"""Exact low-rank outer-product representations ("low-embeddings").

The paper's key data structure is the pair of slender factor matrices
``U (n_A x w)`` and ``V (n_B x w)`` representing the unnormalised similarity
``Z = U @ V.T`` (footnote 1 of the paper).  This module packages that pair
together with a scalar log-scale used to keep float64 magnitudes bounded
over many iterations (DESIGN.md §7): the represented matrix is

    Z = exp(log_scale) * U @ V.T

Scalar rescaling commutes with the final Frobenius normalisation, so all
similarity outputs are unaffected by it.

Everything that can be computed without materialising ``U @ V.T`` is: the
Frobenius norm uses the Gram-trick
``||U V^T||_F^2 = sum((U^T U) * (V^T V))`` and inner products between two
factored matrices use ``<U1 V1^T, U2 V2^T> = sum((U1^T U2) * (V1^T V2))``,
both ``O((n_A + n_B) w^2)`` instead of ``O(n_A n_B w)``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.validation import resolve_node_index

__all__ = ["LowRankFactors"]


class LowRankFactors:
    """An exact factored matrix ``Z = exp(log_scale) * U @ V.T``.

    Parameters
    ----------
    u:
        Left factor, shape ``(n_rows, width)``.
    v:
        Right factor, shape ``(n_cols, width)``.
    log_scale:
        Natural log of the positive scalar multiplier (default 0 = 1.0).

    The constructor copies nothing; callers hand over ownership of the
    arrays.

    Examples
    --------
    >>> import numpy as np
    >>> factors = LowRankFactors(np.ones((3, 1)), 2.0 * np.ones((4, 1)))
    >>> factors.shape, factors.width
    ((3, 4), 1)
    >>> round(factors.frobenius_norm(), 6)   # ||2 * ones(3x4)||_F
    6.928203
    >>> factors.query_block([0], [1, 2])
    array([[2., 2.]])
    """

    __slots__ = ("u", "v", "log_scale")

    def __init__(self, u: np.ndarray, v: np.ndarray, log_scale: float = 0.0) -> None:
        u = np.atleast_2d(np.asarray(u, dtype=np.float64))
        v = np.atleast_2d(np.asarray(v, dtype=np.float64))
        if u.ndim != 2 or v.ndim != 2:
            raise ValueError("factors must be 2-D arrays")
        if u.shape[1] != v.shape[1]:
            raise ValueError(
                f"factor widths differ: U has {u.shape[1]} columns, "
                f"V has {v.shape[1]}"
            )
        self.u = u
        self.v = v
        self.log_scale = float(log_scale)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def ones(cls, n_rows: int, n_cols: int) -> "LowRankFactors":
        """The rank-1 all-ones matrix ``1_{n_rows} 1_{n_cols}^T`` (= Z_0)."""
        if n_rows < 1 or n_cols < 1:
            raise ValueError("dimensions must be positive")
        return cls(np.ones((n_rows, 1)), np.ones((n_cols, 1)))

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        """Shape of the represented matrix ``(n_rows, n_cols)``."""
        return (self.u.shape[0], self.v.shape[0])

    @property
    def width(self) -> int:
        """Number of factor columns (the embedding dimension ``w``)."""
        return self.u.shape[1]

    @property
    def scale(self) -> float:
        """The scalar multiplier ``exp(log_scale)`` (may overflow for huge
        log_scale; use :attr:`log_scale` for reporting in that regime)."""
        return math.exp(self.log_scale)

    def memory_bytes(self) -> int:
        """Bytes held by the two factor arrays."""
        return self.u.nbytes + self.v.nbytes

    # ------------------------------------------------------------------
    # Factored algebra (never materialises U @ V.T)
    # ------------------------------------------------------------------
    def frobenius_norm(self, include_scale: bool = True) -> float:
        """``||Z||_F`` via the Gram trick in ``O((n_rows+n_cols) w^2)``.

        With ``include_scale=False`` the scalar multiplier is ignored,
        which is what the final normalisation step needs (the scale cancels
        there anyway).
        """
        gram_u = self.u.T @ self.u
        gram_v = self.v.T @ self.v
        squared = float(np.sum(gram_u * gram_v))
        # Tiny negatives can appear from rounding; clamp.
        norm = math.sqrt(max(squared, 0.0))
        if include_scale and self.log_scale != 0.0:
            norm *= math.exp(self.log_scale)
        return norm

    def inner_product(self, other: "LowRankFactors") -> float:
        """Frobenius inner product ``<Z_self, Z_other>`` in factored form."""
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
        cross_u = self.u.T @ other.u
        cross_v = self.v.T @ other.v
        value = float(np.sum(cross_u * cross_v))
        total_log = self.log_scale + other.log_scale
        if total_log != 0.0:
            value *= math.exp(total_log)
        return value

    def normalized_distance(self, other: "LowRankFactors") -> float:
        """``|| self/||self|| - other/||other|| ||_F`` without materialising.

        Used by the factored convergence test on even iterates.  Scales
        cancel by construction.
        """
        norm_self = self.frobenius_norm(include_scale=False)
        norm_other = other.frobenius_norm(include_scale=False)
        if norm_self == 0.0 or norm_other == 0.0:
            raise ZeroDivisionError("cannot normalise a zero matrix")
        cross_u = self.u.T @ other.u
        cross_v = self.v.T @ other.v
        cosine = float(np.sum(cross_u * cross_v)) / (norm_self * norm_other)
        # ||a - b||^2 = 2 - 2 cos for unit-norm a, b; clamp rounding noise.
        return math.sqrt(max(2.0 - 2.0 * cosine, 0.0))

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------
    def materialize(self, include_scale: bool = True) -> np.ndarray:
        """The dense ``n_rows x n_cols`` matrix (allocates it!)."""
        dense = self.u @ self.v.T
        if include_scale and self.log_scale != 0.0:
            dense *= math.exp(self.log_scale)
        return dense

    def query_block(
        self,
        row_index: np.ndarray | list[int],
        col_index: np.ndarray | list[int],
        include_scale: bool = True,
    ) -> np.ndarray:
        """The sub-block ``Z[rows, cols]`` (Algorithm 1 line 6).

        Costs ``O((|rows| + |cols|) w + |rows| |cols| w)`` — never touches
        the full matrix.
        """
        rows = resolve_node_index(
            row_index, self.shape[0], "row index",
            allow_empty=True, allow_duplicates=True,
        )
        cols = resolve_node_index(
            col_index, self.shape[1], "column index",
            allow_empty=True, allow_duplicates=True,
        )
        block = self.u[rows] @ self.v[cols].T
        if include_scale and self.log_scale != 0.0:
            block *= math.exp(self.log_scale)
        return block

    # ------------------------------------------------------------------
    # Conditioning
    # ------------------------------------------------------------------
    def rescaled(self) -> "LowRankFactors":
        """Return an equivalent representation with factor magnitudes ~1.

        Divides each factor by its max absolute entry and folds the product
        of the two divisors into ``log_scale``.  Applied once per iteration
        by the solver to keep float64 in range over hundreds of iterations.
        """
        max_u = float(np.abs(self.u).max(initial=0.0))
        max_v = float(np.abs(self.v).max(initial=0.0))
        if max_u == 0.0 or max_v == 0.0:
            return LowRankFactors(self.u.copy(), self.v.copy(), self.log_scale)
        return LowRankFactors(
            self.u / max_u,
            self.v / max_v,
            self.log_scale + math.log(max_u) + math.log(max_v),
        )

    def compressed(self) -> "LowRankFactors":
        """Losslessly shrink the width to ``min(width, n_rows, n_cols)``.

        Uses a thin QR of the wider factor to fold redundant columns into
        the other factor: ``U V^T = Q_U (V R_U^T)^T``.  Exact up to float
        rounding; used by the ``qr-compress`` rank-cap ablation.
        """
        n_rows, n_cols = self.shape
        target = min(n_rows, n_cols)
        if self.width <= target:
            return LowRankFactors(self.u.copy(), self.v.copy(), self.log_scale)
        if n_rows <= n_cols:
            # Compress through the U side: U = Q R, new U = Q (n_rows x n_rows).
            q, r = np.linalg.qr(self.u)
            return LowRankFactors(q, self.v @ r.T, self.log_scale)
        q, r = np.linalg.qr(self.v)
        return LowRankFactors(self.u @ r.T, q, self.log_scale)

    def __repr__(self) -> str:
        return (
            f"LowRankFactors(shape={self.shape}, width={self.width}, "
            f"log_scale={self.log_scale:.3g})"
        )
