"""Exact low-rank outer-product representations ("low-embeddings").

The paper's key data structure is the pair of slender factor matrices
``U (n_A x w)`` and ``V (n_B x w)`` representing the unnormalised similarity
``Z = U @ V.T`` (footnote 1 of the paper).  This module packages that pair
together with a scalar log-scale used to keep float magnitudes bounded
over many iterations (DESIGN.md §7): the represented matrix is

    Z = exp(log_scale) * U @ V.T

Scalar rescaling commutes with the final Frobenius normalisation, so all
similarity outputs are unaffected by it.

First-class representation
--------------------------
:class:`LowRankFactors` is the object every layer of the system holds,
persists, or scans — the solver iterates it, checkpoints snapshot it, the
serialization/index artifacts round-trip it, and the batch/top-k kernels
scan it.  Two policies are therefore explicit attributes rather than
implicit array properties:

* **Precision** — the factor dtype is restricted to ``float64`` (exact
  default) or ``float32`` (opt-in fast path: half the memory bandwidth on
  the SpMM and scan hot loops).  Construction never silently changes a
  supported dtype; mixed or unsupported inputs promote to ``float64``.
  :attr:`precision` reports the policy as a string, :meth:`astype`
  converts between the two.
* **Truncation** — :meth:`recompressed` bounds the width by *numerical
  rank*: a QR of each factor, an SVD of the small core ``R_U R_V^T``, and
  a truncation keeping the smallest rank whose discarded spectral energy
  stays below a relative tolerance.  The resulting object carries a
  :class:`TruncationInfo` record (retained rank, discarded energy,
  effective tolerance) so metrics, traces, and persisted artifacts can
  report how lossy the representation is.

Everything that can be computed without materialising ``U @ V.T`` is: the
Frobenius norm uses the Gram-trick
``||U V^T||_F^2 = sum((U^T U) * (V^T V))`` and inner products between two
factored matrices use ``<U1 V1^T, U2 V2^T> = sum((U1^T U2) * (V1^T V2))``,
both ``O((n_A + n_B) w^2)`` instead of ``O(n_A n_B w)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.utils.validation import resolve_node_index

__all__ = ["LowRankFactors", "TruncationInfo"]

# The two dtypes the precision policy admits.  Anything else (ints,
# float16, mixed pairs) promotes to the exact default.
_SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def _resolve_dtype(requested: "np.dtype | str | type | None") -> np.dtype | None:
    """Normalise a user-supplied precision to one of the supported dtypes."""
    if requested is None:
        return None
    dtype = np.dtype(requested)
    if dtype not in _SUPPORTED_DTYPES:
        raise ValueError(
            f"unsupported factor dtype {dtype}; the precision policy admits "
            "float32 and float64 only"
        )
    return dtype


@dataclass(frozen=True)
class TruncationInfo:
    """Metadata of one rank-bounded recompression.

    Attributes
    ----------
    retained_rank:
        Width kept after truncation (the numerical rank at ``tolerance``).
    discarded_rank:
        Number of singular directions dropped.
    discarded_energy:
        Relative Frobenius error introduced:
        ``||Z - Z_r||_F / ||Z||_F = sqrt(sum_{i>r} s_i^2 / sum_i s_i^2)``.
        Always ``<= tolerance`` by construction.
    tolerance:
        The relative tolerance the truncation was asked to respect.
    """

    retained_rank: int
    discarded_rank: int
    discarded_energy: float
    tolerance: float

    def to_dict(self) -> dict:
        """JSON-serialisable form (for artifacts and checkpoint meta)."""
        return {
            "retained_rank": self.retained_rank,
            "discarded_rank": self.discarded_rank,
            "discarded_energy": self.discarded_energy,
            "tolerance": self.tolerance,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "TruncationInfo":
        """Inverse of :meth:`to_dict`."""
        return cls(
            retained_rank=int(raw["retained_rank"]),
            discarded_rank=int(raw["discarded_rank"]),
            discarded_energy=float(raw["discarded_energy"]),
            tolerance=float(raw["tolerance"]),
        )


class LowRankFactors:
    """An exact factored matrix ``Z = exp(log_scale) * U @ V.T``.

    Parameters
    ----------
    u:
        Left factor, shape ``(n_rows, width)``.
    v:
        Right factor, shape ``(n_cols, width)``.
    log_scale:
        Natural log of the positive scalar multiplier (default 0 = 1.0).
    dtype:
        Explicit precision policy: ``float32`` or ``float64``.  When
        omitted, a matching supported dtype shared by ``u`` and ``v`` is
        preserved; anything else promotes to ``float64`` (the historical
        behaviour, so integer or list inputs still become exact floats).
    truncation:
        Optional :class:`TruncationInfo` describing how these factors
        were produced; carried along by :meth:`rescaled` / :meth:`astype`
        and recorded by persistence layers.

    The constructor copies nothing when dtypes already match; callers
    hand over ownership of the arrays.

    Examples
    --------
    >>> import numpy as np
    >>> factors = LowRankFactors(np.ones((3, 1)), 2.0 * np.ones((4, 1)))
    >>> factors.shape, factors.width, factors.precision
    ((3, 4), 1, 'float64')
    >>> round(factors.frobenius_norm(), 6)   # ||2 * ones(3x4)||_F
    6.928203
    >>> factors.query_block([0], [1, 2])
    array([[2., 2.]])
    """

    __slots__ = ("u", "v", "log_scale", "truncation")

    def __init__(
        self,
        u: np.ndarray,
        v: np.ndarray,
        log_scale: float = 0.0,
        dtype: "np.dtype | str | type | None" = None,
        truncation: TruncationInfo | None = None,
    ) -> None:
        wanted = _resolve_dtype(dtype)
        u = np.atleast_2d(np.asarray(u))
        v = np.atleast_2d(np.asarray(v))
        if wanted is None:
            if u.dtype == v.dtype and u.dtype in _SUPPORTED_DTYPES:
                wanted = u.dtype
            else:
                wanted = np.dtype(np.float64)
        u = np.asarray(u, dtype=wanted)
        v = np.asarray(v, dtype=wanted)
        if u.ndim != 2 or v.ndim != 2:
            raise ValueError("factors must be 2-D arrays")
        if u.shape[1] != v.shape[1]:
            raise ValueError(
                f"factor widths differ: U has {u.shape[1]} columns, "
                f"V has {v.shape[1]}"
            )
        self.u = u
        self.v = v
        self.log_scale = float(log_scale)
        self.truncation = truncation

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def ones(
        cls,
        n_rows: int,
        n_cols: int,
        dtype: "np.dtype | str | type | None" = None,
    ) -> "LowRankFactors":
        """The rank-1 all-ones matrix ``1_{n_rows} 1_{n_cols}^T`` (= Z_0)."""
        if n_rows < 1 or n_cols < 1:
            raise ValueError("dimensions must be positive")
        wanted = _resolve_dtype(dtype) or np.dtype(np.float64)
        return cls(np.ones((n_rows, 1), dtype=wanted), np.ones((n_cols, 1), dtype=wanted))

    # ------------------------------------------------------------------
    # Shape and policy
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        """Shape of the represented matrix ``(n_rows, n_cols)``."""
        return (self.u.shape[0], self.v.shape[0])

    @property
    def width(self) -> int:
        """Number of factor columns (the embedding dimension ``w``)."""
        return self.u.shape[1]

    @property
    def dtype(self) -> np.dtype:
        """The factor dtype (``float32`` or ``float64``)."""
        return self.u.dtype

    @property
    def precision(self) -> str:
        """The precision policy as a string: ``'float32'`` or ``'float64'``."""
        return self.u.dtype.name

    @property
    def scale(self) -> float:
        """The scalar multiplier ``exp(log_scale)`` (may overflow for huge
        log_scale; use :attr:`log_scale` for reporting in that regime)."""
        return math.exp(self.log_scale)

    @property
    def nbytes(self) -> int:
        """Bytes held by the two factor arrays (for ledger charging)."""
        return self.u.nbytes + self.v.nbytes

    @property
    def resident_nbytes(self) -> int:
        """Bytes of the factors actually resident in RAM.

        Identical to :attr:`nbytes` for heap-allocated factors; for
        file-backed factors (the process backend keeps step outputs in
        scratch memmaps) this is the resident-page count, which is what
        the memory ledger should charge — the virtual size would bill
        spillable pages the OS can reclaim at will.
        """
        from repro.utils.memory import resident_nbytes

        return resident_nbytes(self.u) + resident_nbytes(self.v)

    def memory_bytes(self) -> int:
        """Bytes held by the two factor arrays."""
        return self.nbytes

    def astype(self, dtype: "np.dtype | str | type") -> "LowRankFactors":
        """A copy of these factors under the given precision policy."""
        wanted = _resolve_dtype(dtype)
        assert wanted is not None
        return LowRankFactors(
            self.u.astype(wanted, copy=True),
            self.v.astype(wanted, copy=True),
            self.log_scale,
            truncation=self.truncation,
        )

    # ------------------------------------------------------------------
    # Factored algebra (never materialises U @ V.T)
    # ------------------------------------------------------------------
    def frobenius_norm(self, include_scale: bool = True) -> float:
        """``||Z||_F`` via the Gram trick in ``O((n_rows+n_cols) w^2)``.

        With ``include_scale=False`` the scalar multiplier is ignored,
        which is what the final normalisation step needs (the scale cancels
        there anyway).  Gram accumulation happens in float64 regardless of
        the factor precision, so the norm is stable on the float32 path.
        """
        u = self.u if self.u.dtype == np.float64 else self.u.astype(np.float64)
        v = self.v if self.v.dtype == np.float64 else self.v.astype(np.float64)
        gram_u = u.T @ u
        gram_v = v.T @ v
        squared = float(np.sum(gram_u * gram_v))
        # Tiny negatives can appear from rounding; clamp.
        norm = math.sqrt(max(squared, 0.0))
        if include_scale and self.log_scale != 0.0:
            norm *= math.exp(self.log_scale)
        return norm

    def inner_product(self, other: "LowRankFactors") -> float:
        """Frobenius inner product ``<Z_self, Z_other>`` in factored form."""
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
        cross_u = self.u.T @ other.u
        cross_v = self.v.T @ other.v
        value = float(np.sum(cross_u * cross_v))
        total_log = self.log_scale + other.log_scale
        if total_log != 0.0:
            value *= math.exp(total_log)
        return value

    def normalized_distance(self, other: "LowRankFactors") -> float:
        """``|| self/||self|| - other/||other|| ||_F`` without materialising.

        Used by the factored convergence test on even iterates.  Scales
        cancel by construction.
        """
        norm_self = self.frobenius_norm(include_scale=False)
        norm_other = other.frobenius_norm(include_scale=False)
        if norm_self == 0.0 or norm_other == 0.0:
            raise ZeroDivisionError("cannot normalise a zero matrix")
        cross_u = self.u.T @ other.u
        cross_v = self.v.T @ other.v
        cosine = float(np.sum(cross_u * cross_v)) / (norm_self * norm_other)
        # ||a - b||^2 = 2 - 2 cos for unit-norm a, b; clamp rounding noise.
        return math.sqrt(max(2.0 - 2.0 * cosine, 0.0))

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------
    def materialize(self, include_scale: bool = True) -> np.ndarray:
        """The dense ``n_rows x n_cols`` matrix (allocates it!)."""
        dense = self.u @ self.v.T
        if include_scale and self.log_scale != 0.0:
            dense *= math.exp(self.log_scale)
        return dense

    def query_block(
        self,
        row_index: np.ndarray | list[int],
        col_index: np.ndarray | list[int],
        include_scale: bool = True,
    ) -> np.ndarray:
        """The sub-block ``Z[rows, cols]`` (Algorithm 1 line 6).

        Costs ``O((|rows| + |cols|) w + |rows| |cols| w)`` — never touches
        the full matrix.
        """
        rows = resolve_node_index(
            row_index, self.shape[0], "row index",
            allow_empty=True, allow_duplicates=True,
        )
        cols = resolve_node_index(
            col_index, self.shape[1], "column index",
            allow_empty=True, allow_duplicates=True,
        )
        block = self.u[rows] @ self.v[cols].T
        if include_scale and self.log_scale != 0.0:
            block *= math.exp(self.log_scale)
        return block

    # ------------------------------------------------------------------
    # Conditioning
    # ------------------------------------------------------------------
    def rescaled(self) -> "LowRankFactors":
        """Return an equivalent representation with factor magnitudes ~1.

        Divides each factor by its max absolute entry and folds the product
        of the two divisors into ``log_scale``.  Applied once per iteration
        by the solver to keep the float range bounded over hundreds of
        iterations.
        """
        max_u = float(np.abs(self.u).max(initial=0.0))
        max_v = float(np.abs(self.v).max(initial=0.0))
        if max_u == 0.0 or max_v == 0.0:
            return LowRankFactors(
                self.u.copy(), self.v.copy(), self.log_scale,
                truncation=self.truncation,
            )
        return LowRankFactors(
            self.u / max_u,
            self.v / max_v,
            self.log_scale + math.log(max_u) + math.log(max_v),
            truncation=self.truncation,
        )

    def compressed(self) -> "LowRankFactors":
        """Losslessly shrink the width to ``min(width, n_rows, n_cols)``.

        Uses a thin QR of the wider factor to fold redundant columns into
        the other factor: ``U V^T = Q_U (V R_U^T)^T``.  Exact up to float
        rounding; used by the ``qr-compress`` rank-cap ablation.  For the
        lossy, tolerance-driven variant see :meth:`recompressed`.
        """
        n_rows, n_cols = self.shape
        target = min(n_rows, n_cols)
        if self.width <= target:
            return LowRankFactors(
                self.u.copy(), self.v.copy(), self.log_scale,
                truncation=self.truncation,
            )
        if n_rows <= n_cols:
            # Compress through the U side: U = Q R, new U = Q (n_rows x n_rows).
            q, r = np.linalg.qr(self.u)
            return LowRankFactors(
                q, self.v @ r.T, self.log_scale, truncation=self.truncation
            )
        q, r = np.linalg.qr(self.v)
        return LowRankFactors(
            self.u @ r.T, q, self.log_scale, truncation=self.truncation
        )

    def recompressed(
        self, tol: float, max_rank: int | None = None
    ) -> "LowRankFactors":
        """Truncate the width to the numerical rank at relative tolerance
        ``tol``.

        The machinery is the orthogonalised truncation of the low-rank
        SimRank line of work (and of the GSVD baseline): thin QR of each
        factor, SVD of the small ``w x w`` core ``R_U R_V^T``, and a cut
        keeping the smallest rank ``r`` whose discarded spectral energy
        satisfies ``sum_{i>r} s_i^2 <= tol^2 * sum_i s_i^2`` — i.e. the
        truncation error is at most ``tol`` *relative to* ``||Z||_F``:

            ||Z - Z_r||_F <= tol * ||Z||_F.

        Because GSim+ normalises by the Frobenius norm at the end, a
        per-iteration recompression at tolerance ``tol`` perturbs the
        final normalised similarity by at most ~``K * tol`` over ``K``
        iterations (first order) — the solver keeps this far below the
        Theorem 4.2 spectral bound by default.

        Cost: ``O((n_rows + n_cols) w^2 + w^3)`` — the same shape as one
        doubling step, so recompressing every iteration keeps deep
        iterations at ~constant cost per step instead of the exponential
        ``2^k`` schedule.

        Returns a new object in the same precision, carrying a
        :class:`TruncationInfo` record; ``max_rank`` optionally caps the
        retained rank regardless of tolerance.

        Examples
        --------
        >>> import numpy as np
        >>> rng = np.random.default_rng(0)
        >>> base = rng.normal(size=(20, 2))
        >>> # Width 6 but numerical rank 2: columns are linear combos.
        >>> mix = rng.normal(size=(2, 6))
        >>> factors = LowRankFactors(base @ mix, rng.normal(size=(15, 6)))
        >>> compact = factors.recompressed(tol=1e-10)
        >>> compact.width
        2
        >>> float(np.abs(compact.materialize() - factors.materialize()).max()) < 1e-9
        True
        """
        if not (0.0 < tol < 1.0):
            raise ValueError(f"tol must be in (0, 1), got {tol}")
        if max_rank is not None and max_rank < 1:
            raise ValueError(f"max_rank must be >= 1, got {max_rank}")
        q_u, r_u = np.linalg.qr(self.u)
        q_v, r_v = np.linalg.qr(self.v)
        core = r_u @ r_v.T
        core_u, sigma, core_vt = np.linalg.svd(core, full_matrices=False)
        # Energy accounting in float64 even on the float32 path, so the
        # cut decision is never dominated by accumulation noise.
        s2 = np.asarray(sigma, dtype=np.float64) ** 2
        total = float(s2.sum())
        width = self.width
        if total == 0.0:
            rank = 1
            discarded = 0.0
        else:
            # tail[i] = sum_{j >= i} s_j^2, with tail[width] = 0.
            tail = np.concatenate([np.cumsum(s2[::-1])[::-1], [0.0]])
            budget = (tol * tol) * total
            rank = int(np.argmax(tail <= budget))
            rank = max(rank, 1)
            if max_rank is not None:
                rank = min(rank, max_rank)
            discarded = math.sqrt(max(float(tail[rank]), 0.0) / total)
        rank = min(rank, width)
        # Split the singular values symmetrically so both factors stay
        # well-conditioned (the solver's per-step rescale sees magnitudes
        # ~sqrt(s) on each side instead of s on one).
        root = np.sqrt(sigma[:rank]).astype(self.dtype, copy=False)
        new_u = q_u @ (core_u[:, :rank] * root)
        new_v = q_v @ (core_vt[:rank].T * root)
        info = TruncationInfo(
            retained_rank=rank,
            discarded_rank=width - rank,
            discarded_energy=discarded,
            tolerance=float(tol),
        )
        return LowRankFactors(new_u, new_v, self.log_scale, truncation=info)

    def __repr__(self) -> str:
        return (
            f"LowRankFactors(shape={self.shape}, width={self.width}, "
            f"precision={self.precision!r}, log_scale={self.log_scale:.3g})"
        )
