"""Batched query serving over precomputed factors.

A retrieval service answers many query blocks against one factor pair.
``BatchQueryEngine`` wraps :class:`repro.core.embeddings.LowRankFactors`
with:

* ``query_many`` — answer a list of ``(Q_A, Q_B)`` blocks, optionally on a
  thread pool (the underlying BLAS products release the GIL, so threads
  give real parallelism for large blocks);
* ``stream_rows`` — iterate the full similarity row-block by row-block
  under a hard memory bound, for exhaustive consumers (exports, rank
  scans) that must never materialise ``n_A x n_B``.

Both entry points accept an optional
:class:`repro.runtime.ExecutionContext`: each served block is a
checkpoint (deadline/cancellation polled, block bytes charged against the
live memory budget) and block counts land in ``context.metrics`` under
``batch.*``.  The :class:`repro.runtime.Metrics` sink is lock-protected,
so the thread-pool path aggregates counters without losing increments.
"""

from __future__ import annotations

import time
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.embeddings import LowRankFactors
from repro.runtime import ExecutionContext
from repro.runtime.parallel import WorkerPool
from repro.runtime.trace import NULL_TRACER
from repro.utils.validation import check_positive_integer

__all__ = ["BatchQueryEngine"]


class BatchQueryEngine:
    """Serve similarity queries from one factor pair.

    Parameters
    ----------
    factors:
        The precomputed (possibly loaded) low-embeddings.
    normalization:
        ``"global"`` (default): blocks are entries of the unit-Frobenius
        full matrix; ``"block"``: each block normalised by its own norm
        (Algorithm 1's convention).

    Examples
    --------
    >>> import numpy as np
    >>> engine = BatchQueryEngine(
    ...     LowRankFactors(np.ones((4, 1)), np.ones((3, 1))))
    >>> blocks = engine.query_many([([0, 1], [0]), ([2], [1, 2])])
    >>> [b.shape for b in blocks]
    [(2, 1), (1, 2)]
    """

    def __init__(
        self, factors: LowRankFactors, normalization: str = "global"
    ) -> None:
        if normalization not in ("global", "block"):
            raise ValueError(f"unknown normalization {normalization!r}")
        self._factors = factors
        self._normalization = normalization
        self._global_norm = factors.frobenius_norm(include_scale=False)
        if self._global_norm == 0.0:
            raise ZeroDivisionError("factors represent the zero matrix")

    @property
    def shape(self) -> tuple[int, int]:
        """Shape of the represented similarity matrix."""
        return self._factors.shape

    @property
    def global_norm(self) -> float:
        """``||Z||_F`` of the represented (unnormalised) similarity."""
        return self._global_norm

    def query(
        self,
        queries_a: np.ndarray | Sequence[int],
        queries_b: np.ndarray | Sequence[int],
        context: ExecutionContext | None = None,
    ) -> np.ndarray:
        """One normalised query block."""
        if context is not None:
            context.checkpoint("batch query block")
        tracer = context.tracer if context is not None else NULL_TRACER
        start = time.perf_counter()
        with tracer.span("batch.query_block") as span:
            block = self._factors.query_block(
                queries_a, queries_b, include_scale=False
            )
            span.set_attribute("cells", int(block.size))
            if self._normalization == "block":
                denominator = float(np.linalg.norm(block))
                if denominator == 0.0:
                    raise ZeroDivisionError("query block has zero norm")
            else:
                denominator = self._global_norm
            if context is not None:
                context.metrics.increment("batch.blocks_served")
                context.metrics.increment("batch.cells_served", block.size)
                if context.slow_queries is not None:
                    context.slow_queries.maybe_record(
                        "batch.query_block",
                        time.perf_counter() - start,
                        cells=int(block.size),
                        width=self._factors.width,
                        span_id=getattr(span, "span_id", None),
                    )
            return block / denominator

    def query_many(
        self,
        requests: Iterable[tuple[Sequence[int], Sequence[int]]],
        max_workers: "WorkerPool | int | None" = None,
        context: ExecutionContext | None = None,
    ) -> list[np.ndarray]:
        """Answer many blocks; ``max_workers > 1`` uses a worker pool.

        Results come back in request order regardless of worker count, and
        each block's scores are worker-count independent (blocks are
        computed whole, never split).  Each block is a checkpoint of
        ``context``; with a thread pool the workers share the same
        lock-protected metrics sink, so counter increments are never lost
        to races.
        """
        request_list = list(requests)
        if isinstance(max_workers, int) and max_workers < 1:
            max_workers = 1  # historical "0 means serial" tolerance
        pool = WorkerPool.resolve(max_workers)
        return pool.map(
            lambda request: self.query(request[0], request[1], context=context),
            request_list,
            context=context,
            what="batch query blocks",
        )

    def stream_rows(
        self,
        block_rows: int = 1024,
        context: ExecutionContext | None = None,
    ) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(start_row, normalised_block)`` covering every row.

        Peak memory is ``O(block_rows * n_B)``; global normalisation is
        used so concatenating the blocks reproduces the full matrix.  With
        a context, every block is a checkpoint and its bytes are charged
        against the live memory budget while it is the current block.
        """
        block_rows = check_positive_integer(block_rows, "block_rows")
        n_rows, n_cols = self._factors.shape
        v_t = self._factors.v.T
        charged = 0
        try:
            for start in range(0, n_rows, block_rows):
                stop = min(start + block_rows, n_rows)
                if context is not None:
                    context.checkpoint(f"stream_rows block at row {start}")
                    context.release(charged)
                    charged = 0
                    itemsize = self._factors.dtype.itemsize
                    block_bytes = (stop - start) * n_cols * itemsize
                    context.charge(block_bytes, "stream_rows block")
                    charged = block_bytes
                block = (self._factors.u[start:stop] @ v_t) / self._global_norm
                if context is not None:
                    context.metrics.increment("batch.blocks_served")
                    context.metrics.increment("batch.rows_streamed", stop - start)
                yield start, block
        finally:
            if context is not None and charged:
                context.release(charged)
