"""Core contribution: the GSim+ algorithm and its supporting algebra.

Public surface:

* :class:`repro.core.embeddings.LowRankFactors` — exact outer-product
  representation ``Z = s * U @ V.T`` with factored norm/inner-product
  algebra.
* :func:`repro.core.gsim_plus.gsim_plus` — Algorithm 1 from the paper.
* :class:`repro.core.gsim_plus.GSimPlus` — reusable solver object exposing
  per-iteration state (used by the convergence and accuracy experiments).
* :func:`repro.core.error_bound.error_bound` — Theorem 4.2.
* :mod:`repro.core.complexity` — Table 1 cost models.
"""

from repro.core.complexity import COST_MODELS, CostModel, predict_cost
from repro.core.convergence import ConvergenceReport, iterate_to_convergence
from repro.core.embeddings import LowRankFactors, TruncationInfo
from repro.core.error_bound import (
    error_bound,
    exact_similarity_spectral,
    kronecker_similarity_matrix,
    spectral_gap,
)
from repro.core.gsim_plus import GSimPlus, GSimPlusResult, gsim_plus
from repro.core.serialization import load_factors, save_factors
from repro.core.topk import ScoredPair, top_k_for_queries, top_k_pairs

__all__ = [
    "COST_MODELS",
    "ConvergenceReport",
    "CostModel",
    "GSimPlus",
    "GSimPlusResult",
    "LowRankFactors",
    "ScoredPair",
    "TruncationInfo",
    "error_bound",
    "exact_similarity_spectral",
    "gsim_plus",
    "iterate_to_convergence",
    "kronecker_similarity_matrix",
    "load_factors",
    "predict_cost",
    "save_factors",
    "spectral_gap",
    "top_k_for_queries",
    "top_k_pairs",
]
