"""Top-k pair retrieval from the factored similarity.

The paper's title speaks of *retrieval*: applications rarely want the full
``n_A x n_B`` matrix — they want the most similar pairs.  With GSim+'s
factors that can be answered without materialising the matrix: the
candidate rows are scanned in blocks of bounded size, keeping a running
k-best candidate set, so memory stays ``O(block_rows * n_B + k)`` no
matter how large ``n_A`` grows.

Selection inside a block is vectorised: ``np.argpartition`` finds the
k-th score in linear time, every entry tied with it is kept, and only the
surviving candidates are sorted — ``O(rows * n_B + k log k)`` per block
instead of the full ``O(rows * n_B log(rows * n_B))`` sort.

Ordering is canonical everywhere: score descending, then lowest
``node_a``, then lowest ``node_b``.  Because candidate merges select by
that total order over values (not by arrival order), the result is
independent of block size and of worker count — the parallel scan splits
rows into contiguous per-worker ranges, each keeps a local k-best set,
and the final merge re-selects the global top k deterministically.

Entry points:

* :func:`top_k_pairs` — globally best ``(a, b, score)`` triples.
* :func:`top_k_for_queries` — per-query-node ranking (the "find the most
  similar nodes in the other graph" primitive of the synonym-extraction
  and community-matching applications).
* :func:`scan_top_pairs` — the scan engine over prebuilt factors, shared
  with :class:`repro.retrieval.GSimIndex`.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.embeddings import LowRankFactors
from repro.core.gsim_plus import GSimPlus
from repro.graphs.graph import Graph
from repro.runtime import ExecutionContext
from repro.runtime import procpool
from repro.runtime.parallel import WorkerPool, shard_ranges
from repro.runtime.trace import NULL_TRACER
from repro.utils.memory import dense_matrix_bytes
from repro.utils.validation import check_positive_integer, resolve_node_index

__all__ = ["ScoredPair", "scan_top_pairs", "top_k_for_queries", "top_k_pairs"]


@dataclass(frozen=True)
class ScoredPair:
    """One retrieved pair: node in G_A, node in G_B, similarity score."""

    node_a: int
    node_b: int
    score: float


def _factors_for(
    graph_a: Graph,
    graph_b: Graph,
    iterations: int,
    context: ExecutionContext | None = None,
    max_workers: "WorkerPool | int | None" = None,
    recompress_tol: float | None = None,
    precision: str = "float64",
    backend: str = "thread",
) -> LowRankFactors:
    """Run GSim+ and return the final factors (factored regime enforced).

    Uses the QR-compressed cap so the representation stays factored even
    past ``2^k >= min(n_A, n_B)`` — the scan below needs U/V, not a dense Z.
    ``recompress_tol`` / ``precision`` forward to the solver's
    recompression and precision policies.
    """
    solver = GSimPlus(
        graph_a,
        graph_b,
        rank_cap="qr-compress",
        max_workers=max_workers,
        recompress_tol=recompress_tol,
        precision=precision,
        backend=backend,
    )
    state = None
    for state in solver.iterate(iterations, context=context):
        pass
    assert state is not None and state.factors is not None
    return state.factors


def _canonical_top_k(
    scores: np.ndarray, rows: np.ndarray, cols: np.ndarray, k: int
) -> np.ndarray:
    """Indices of the ``k`` best candidates by ``(-score, row, col)``."""
    return np.lexsort((cols, rows, -scores))[:k]


def _row_top_k(row: np.ndarray, k: int) -> np.ndarray:
    """Columns of the ``k`` largest entries, ties broken by lowest column.

    Matches ``np.argsort(-row, kind="stable")[:k]`` exactly, but only the
    (at most ``k + ties``) surviving candidates are sorted.
    """
    n = row.size
    if k >= n:
        candidates = np.arange(n)
    else:
        kth = row[np.argpartition(-row, k - 1)[k - 1]]
        candidates = np.flatnonzero(row >= kth)
    return candidates[np.lexsort((candidates, -row[candidates]))[:k]]


def _scan_range(
    u: np.ndarray,
    v_t: np.ndarray,
    start: int,
    stop: int,
    k: int,
    block_rows: int,
    context: ExecutionContext | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Scan rows ``[start, stop)`` in bounded blocks; return the range's
    k-best candidates as ``(scores, rows, cols)`` arrays.

    The running candidate set is exact under truncation: rows are scanned
    in ascending order, so an entry tying the current k-th score always
    loses the ``(row, col)`` tie-break to every retained entry and can be
    dropped; anything below the k-th score is dominated forever.
    """
    n_b = v_t.shape[1]
    itemsize = v_t.dtype.itemsize
    best_scores = np.empty(0, dtype=np.float64)
    best_rows = np.empty(0, dtype=np.int64)
    best_cols = np.empty(0, dtype=np.int64)
    threshold = -np.inf
    for block_start in range(start, stop, block_rows):
        block_stop = min(block_start + block_rows, stop)
        block_bytes = dense_matrix_bytes(
            block_stop - block_start, n_b, itemsize=itemsize
        )
        if context is not None:
            context.checkpoint(f"top_k_pairs scan at row {block_start}")
            context.metrics.increment("topk.blocks_scanned")
            context.metrics.increment(
                "topk.rows_scanned", block_stop - block_start
            )
            context.charge(block_bytes, "top-k scan block")
        try:
            flat = (u[block_start:block_stop] @ v_t).ravel()
            # Candidates: everything that can still reach the top k.  The
            # >= keeps score ties with the current k-th entry, so the merge
            # below decides them by the canonical order, never by arrival.
            if threshold > -np.inf:
                candidates = np.flatnonzero(flat >= threshold)
            else:
                candidates = np.arange(flat.size)
            values = flat[candidates]
        finally:
            if context is not None:
                context.release(block_bytes)
        if values.size > k:
            kth = values[np.argpartition(-values, k - 1)[k - 1]]
            keep = values >= kth
            candidates = candidates[keep]
            values = values[keep]
        if candidates.size == 0:
            continue
        merged_scores = np.concatenate([best_scores, values])
        merged_rows = np.concatenate(
            [best_rows, block_start + candidates // n_b]
        )
        merged_cols = np.concatenate([best_cols, candidates % n_b])
        order = _canonical_top_k(merged_scores, merged_rows, merged_cols, k)
        best_scores = merged_scores[order]
        best_rows = merged_rows[order]
        best_cols = merged_cols[order]
        if best_scores.size == k:
            threshold = float(best_scores[-1])
    return best_scores, best_rows, best_cols


# ----------------------------------------------------------------------
# Process-pool worker tasks (module level: picklable under fork and spawn).
# Inputs arrive as (path, range) descriptors; only the k-best survivors —
# a few hundred bytes — travel back through pickle.
# ----------------------------------------------------------------------
def _scan_pairs_task(
    task: "tuple[procpool.ArrayRef, procpool.ArrayRef, int, int, int, int]",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One contiguous row range of the pair scan, in a pool process —
    the identical :func:`_scan_range` kernel the thread path runs."""
    u_ref, v_t_ref, start, stop, k, block_rows = task
    u = procpool.load_ref(u_ref)
    v_t = procpool.load_ref(v_t_ref)
    return _scan_range(u, v_t, start, stop, k, block_rows, None)


def _scan_queries_task(
    task: "tuple[procpool.ArrayRef, procpool.ArrayRef, procpool.ArrayRef, int, int, int]",
) -> list[tuple[int, np.ndarray, np.ndarray]]:
    """One query chunk of the per-query scan, in a pool process."""
    u_ref, v_t_ref, rows_ref, start, stop, k = task
    u = procpool.load_ref(u_ref)
    v_t = procpool.load_ref(v_t_ref)
    rows = procpool.load_ref(rows_ref)
    chunk = rows[start:stop]
    block = u[chunk] @ v_t
    out = []
    for i, node_a in enumerate(chunk):
        order = _row_top_k(block[i], k)
        out.append((int(node_a), order, block[i, order]))
    return out


def scan_top_pairs(
    factors: LowRankFactors,
    k: int,
    block_rows: int = 1024,
    context: ExecutionContext | None = None,
    max_workers: "WorkerPool | int | None" = None,
    score_scale: float = 1.0,
    backend: str = "thread",
) -> list[ScoredPair]:
    """The ``k`` best pairs of a prebuilt factor pair.

    ``score_scale`` multiplies the raw factored scores in the returned
    pairs (callers pass ``1 / ||Z||_F`` for normalised scores); the
    ranking itself uses the raw scores, so any positive scale yields the
    same pairs.  With ``max_workers > 1`` the rows split into contiguous
    per-worker ranges whose local k-best sets are merged by the canonical
    ``(-score, node_a, node_b)`` order — results are identical for every
    worker count and block size.
    """
    k = check_positive_integer(k, "k")
    block_rows = check_positive_integer(block_rows, "block_rows")
    n_a, n_b = factors.shape
    k = min(k, n_a * n_b)
    pool = WorkerPool.resolve(max_workers, backend=backend)
    v_t = np.ascontiguousarray(factors.v.T)
    u = factors.u
    tracer = context.tracer if context is not None else NULL_TRACER

    def _scan(bounds: tuple[int, int]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        start, stop = bounds
        return _scan_range(u, v_t, start, stop, k, block_rows, context)

    def _map_ranges() -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        bounds = shard_ranges(n_a, pool.max_workers)
        if not pool.process_parallel:
            return pool.map(
                _scan, bounds, context=context, what="top-k pair scan"
            )
        # Process backend: spill the two factor operands once, ship
        # (descriptor, row range) tasks, get back only each range's
        # k-best candidates.  Same kernel and canonical merge order, so
        # the result is bit-identical to the thread and serial scans.
        with tempfile.TemporaryDirectory(prefix="gsimplus-topk-") as scratch:
            u_ref = procpool.spill_array(u, Path(scratch) / "u.npy")
            v_t_ref = procpool.spill_array(v_t, Path(scratch) / "v_t.npy")
            tasks = [
                (u_ref, v_t_ref, start, stop, k, block_rows)
                for start, stop in bounds
            ]
            if context is not None:
                context.metrics.increment(
                    "topk.rows_scanned", n_a
                )
            return pool.map(
                _scan_pairs_task, tasks, context=context, what="top-k pair scan"
            )

    start_time = time.perf_counter()
    with tracer.span("topk.scan_pairs") as span:
        span.set_attribute("k", k)
        span.set_attribute("rows", n_a)
        span.set_attribute("cols", n_b)
        try:
            parts = _map_ranges()
            if not parts:
                return []
            scores = np.concatenate([part[0] for part in parts])
            rows = np.concatenate([part[1] for part in parts])
            cols = np.concatenate([part[2] for part in parts])
            order = _canonical_top_k(scores, rows, cols, k)
            return [
                ScoredPair(int(rows[i]), int(cols[i]), float(scores[i]) * score_scale)
                for i in order
            ]
        finally:
            if context is not None:
                duration = time.perf_counter() - start_time
                context.metrics.observe_histogram("topk.scan_seconds", duration)
                if context.slow_queries is not None:
                    context.slow_queries.maybe_record(
                        "topk.scan_pairs",
                        duration,
                        k=int(k),
                        rows=int(n_a),
                        cols=int(n_b),
                        width=factors.width,
                        workers=pool.max_workers,
                        span_id=getattr(span, "span_id", None),
                    )


def top_k_pairs(
    graph_a: Graph,
    graph_b: Graph,
    k: int,
    iterations: int = 10,
    block_rows: int = 1024,
    context: ExecutionContext | None = None,
    max_workers: "WorkerPool | int | None" = None,
    recompress_tol: float | None = None,
    precision: str = "float64",
    backend: str = "thread",
) -> list[ScoredPair]:
    """The ``k`` highest-similarity cross-graph pairs.

    Scores are the *unnormalised* factored products; the ordering is
    identical to the normalised similarity (normalisation is a positive
    scalar), and returned scores are rescaled to unit Frobenius norm for
    interpretability.  Ties are broken by lowest ``node_a`` then lowest
    ``node_b``; the result is independent of ``block_rows`` and
    ``max_workers``.

    Examples
    --------
    >>> from repro.graphs import Graph
    >>> a = Graph.from_edges(6, [(0, i) for i in range(1, 6)])
    >>> b = Graph.from_edges(4, [(0, i) for i in range(1, 4)])
    >>> best = top_k_pairs(a, b, k=1, iterations=6)
    >>> (best[0].node_a, best[0].node_b)   # hub matches hub
    (0, 0)
    """
    k = check_positive_integer(k, "k")
    block_rows = check_positive_integer(block_rows, "block_rows")
    factors = _factors_for(
        graph_a,
        graph_b,
        iterations,
        context=context,
        max_workers=max_workers,
        recompress_tol=recompress_tol,
        precision=precision,
        backend=backend,
    )
    norm = factors.frobenius_norm(include_scale=False)
    if norm == 0.0:
        raise ZeroDivisionError("similarity collapsed to zero; no ranking exists")
    return scan_top_pairs(
        factors,
        k,
        block_rows=block_rows,
        context=context,
        max_workers=max_workers,
        score_scale=1.0 / norm,
        backend=backend,
    )


def top_k_for_queries(
    graph_a: Graph,
    graph_b: Graph,
    queries_a: np.ndarray | list[int],
    k: int,
    iterations: int = 10,
    block_rows: int = 1024,
    context: ExecutionContext | None = None,
    max_workers: "WorkerPool | int | None" = None,
    recompress_tol: float | None = None,
    precision: str = "float64",
    backend: str = "thread",
) -> dict[int, list[ScoredPair]]:
    """For each query node of ``G_A``, its ``k`` best matches in ``G_B``.

    Returns a mapping ``query node -> ranked ScoredPair list`` (ties broken
    by node id for determinism).  Query rows are scored in blocks of at
    most ``block_rows``, so memory stays ``O(block_rows * n_B)`` however
    large the query set is — each block's working set is charged against
    the context's memory ledger and released after the block.
    """
    k = check_positive_integer(k, "k")
    block_rows = check_positive_integer(block_rows, "block_rows")
    factors = _factors_for(
        graph_a,
        graph_b,
        iterations,
        context=context,
        max_workers=max_workers,
        recompress_tol=recompress_tol,
        precision=precision,
        backend=backend,
    )
    rows = resolve_node_index(
        queries_a, factors.shape[0], "queries_a",
        allow_empty=True, allow_duplicates=True,
    )
    n_b = factors.shape[1]
    k = min(k, n_b)
    norm = factors.frobenius_norm(include_scale=False)
    if norm == 0.0:
        raise ZeroDivisionError("similarity collapsed to zero; no ranking exists")
    pool = WorkerPool.resolve(max_workers, backend=backend)
    v_t = np.ascontiguousarray(factors.v.T)
    u = factors.u

    def _scan_chunk(
        bounds: tuple[int, int],
    ) -> list[tuple[int, np.ndarray, np.ndarray]]:
        start, stop = bounds
        chunk = rows[start:stop]
        block_bytes = dense_matrix_bytes(
            chunk.size, n_b, itemsize=v_t.dtype.itemsize
        )
        if context is not None:
            context.checkpoint(f"top_k_for_queries scan at query {start}")
            context.metrics.increment("topk.blocks_scanned")
            context.metrics.increment("topk.rows_scanned", int(chunk.size))
            context.charge(block_bytes, "top-k query block")
        try:
            block = u[chunk] @ v_t
            out = []
            for i, node_a in enumerate(chunk):
                order = _row_top_k(block[i], k)
                # Copy only the k survivors so the full block can be freed.
                out.append((int(node_a), order, block[i, order]))
            return out
        finally:
            if context is not None:
                context.release(block_bytes)

    chunk_bounds = [
        (start, min(start + block_rows, rows.size))
        for start in range(0, rows.size, block_rows)
    ]
    def _map_chunks() -> list[list[tuple[int, np.ndarray, np.ndarray]]]:
        if not (pool.process_parallel and chunk_bounds):
            return pool.map(
                _scan_chunk, chunk_bounds, context=context, what="top-k query scan"
            )
        with tempfile.TemporaryDirectory(prefix="gsimplus-topk-") as scratch:
            u_ref = procpool.spill_array(u, Path(scratch) / "u.npy")
            v_t_ref = procpool.spill_array(v_t, Path(scratch) / "v_t.npy")
            rows_ref = procpool.spill_array(rows, Path(scratch) / "rows.npy")
            tasks = [
                (u_ref, v_t_ref, rows_ref, start, stop, k)
                for start, stop in chunk_bounds
            ]
            if context is not None:
                context.metrics.increment("topk.rows_scanned", int(rows.size))
            return pool.map(
                _scan_queries_task, tasks, context=context,
                what="top-k query scan",
            )

    tracer = context.tracer if context is not None else NULL_TRACER
    start_time = time.perf_counter()
    with tracer.span("topk.query_scan") as span:
        span.set_attribute("queries", int(rows.size))
        span.set_attribute("k", k)
        try:
            parts = _map_chunks()
        finally:
            if context is not None:
                duration = time.perf_counter() - start_time
                context.metrics.observe_histogram(
                    "topk.query_scan_seconds", duration
                )
                if context.slow_queries is not None:
                    context.slow_queries.maybe_record(
                        "topk.query_scan",
                        duration,
                        queries=int(rows.size),
                        k=int(k),
                        width=factors.width,
                        workers=pool.max_workers,
                        span_id=getattr(span, "span_id", None),
                    )
    results: dict[int, list[ScoredPair]] = {}
    for part in parts:
        for node_a, order, scores in part:
            results[node_a] = [
                ScoredPair(node_a, int(col), float(score) / norm)
                for col, score in zip(order, scores)
            ]
    return results
