"""Top-k pair retrieval from the factored similarity.

The paper's title speaks of *retrieval*: applications rarely want the full
``n_A x n_B`` matrix — they want the most similar pairs.  With GSim+'s
factors that can be answered without materialising the matrix: the
candidate rows are scanned in blocks of bounded size, keeping a running
k-best heap, so memory stays ``O(block_rows * n_B + k)`` no matter how
large ``n_A`` grows.

Two entry points:

* :func:`top_k_pairs` — globally best ``(a, b, score)`` triples.
* :func:`top_k_for_queries` — per-query-node ranking (the "find the most
  similar nodes in the other graph" primitive of the synonym-extraction
  and community-matching applications).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.core.embeddings import LowRankFactors
from repro.core.gsim_plus import GSimPlus
from repro.graphs.graph import Graph
from repro.runtime import ExecutionContext
from repro.utils.validation import check_positive_integer, resolve_node_index

__all__ = ["ScoredPair", "top_k_for_queries", "top_k_pairs"]


@dataclass(frozen=True)
class ScoredPair:
    """One retrieved pair: node in G_A, node in G_B, similarity score."""

    node_a: int
    node_b: int
    score: float


def _factors_for(
    graph_a: Graph,
    graph_b: Graph,
    iterations: int,
    context: ExecutionContext | None = None,
) -> LowRankFactors:
    """Run GSim+ and return the final factors (factored regime enforced).

    Uses the QR-compressed cap so the representation stays factored even
    past ``2^k >= min(n_A, n_B)`` — the scan below needs U/V, not a dense Z.
    """
    solver = GSimPlus(graph_a, graph_b, rank_cap="qr-compress")
    state = None
    for state in solver.iterate(iterations, context=context):
        pass
    assert state is not None and state.factors is not None
    return state.factors


def top_k_pairs(
    graph_a: Graph,
    graph_b: Graph,
    k: int,
    iterations: int = 10,
    block_rows: int = 1024,
    context: ExecutionContext | None = None,
) -> list[ScoredPair]:
    """The ``k`` highest-similarity cross-graph pairs.

    Scores are the *unnormalised* factored products; the ordering is
    identical to the normalised similarity (normalisation is a positive
    scalar), and returned scores are rescaled to unit Frobenius norm for
    interpretability.

    Examples
    --------
    >>> from repro.graphs import Graph
    >>> a = Graph.from_edges(6, [(0, i) for i in range(1, 6)])
    >>> b = Graph.from_edges(4, [(0, i) for i in range(1, 4)])
    >>> best = top_k_pairs(a, b, k=1, iterations=6)
    >>> (best[0].node_a, best[0].node_b)   # hub matches hub
    (0, 0)
    """
    k = check_positive_integer(k, "k")
    block_rows = check_positive_integer(block_rows, "block_rows")
    factors = _factors_for(graph_a, graph_b, iterations, context=context)
    n_a, n_b = factors.shape
    k = min(k, n_a * n_b)
    norm = factors.frobenius_norm(include_scale=False)
    if norm == 0.0:
        raise ZeroDivisionError("similarity collapsed to zero; no ranking exists")

    heap: list[tuple[float, int, int]] = []  # (score, a, b) min-heap
    v_t = factors.v.T
    for start in range(0, n_a, block_rows):
        stop = min(start + block_rows, n_a)
        if context is not None:
            context.checkpoint(f"top_k_pairs scan at row {start}")
            context.metrics.increment("topk.blocks_scanned")
            context.metrics.increment("topk.rows_scanned", stop - start)
        block = factors.u[start:stop] @ v_t  # (rows, n_B), bounded memory
        if len(heap) < k:
            # Seed the heap from the first block's top entries; the stable
            # sort of the negated block prefers smaller indices among ties,
            # and later blocks only displace on strictly greater scores,
            # so tie-breaking is deterministic (lowest node ids win).
            flat = np.argsort(-block, axis=None, kind="stable")[:k]
            for index in flat:
                row, col = divmod(int(index), n_b)
                entry = (float(block[row, col]), start + row, col)
                if len(heap) < k:
                    heapq.heappush(heap, entry)
                else:
                    heapq.heappushpop(heap, entry)
            continue
        threshold = heap[0][0]
        rows, cols = np.nonzero(block > threshold)
        for row, col in zip(rows, cols):
            entry = (float(block[row, col]), start + int(row), int(col))
            if entry[0] > heap[0][0]:
                heapq.heappushpop(heap, entry)
    ranked = sorted(heap, key=lambda item: (-item[0], item[1], item[2]))
    return [
        ScoredPair(node_a=a, node_b=b, score=score / norm)
        for score, a, b in ranked
    ]


def top_k_for_queries(
    graph_a: Graph,
    graph_b: Graph,
    queries_a: np.ndarray | list[int],
    k: int,
    iterations: int = 10,
    context: ExecutionContext | None = None,
) -> dict[int, list[ScoredPair]]:
    """For each query node of ``G_A``, its ``k`` best matches in ``G_B``.

    Returns a mapping ``query node -> ranked ScoredPair list`` (ties broken
    by node id for determinism).
    """
    k = check_positive_integer(k, "k")
    factors = _factors_for(graph_a, graph_b, iterations, context=context)
    rows = resolve_node_index(
        queries_a, factors.shape[0], "queries_a",
        allow_empty=True, allow_duplicates=True,
    )
    k = min(k, factors.shape[1])
    norm = factors.frobenius_norm(include_scale=False)
    if norm == 0.0:
        raise ZeroDivisionError("similarity collapsed to zero; no ranking exists")
    if context is not None:
        context.checkpoint("top_k_for_queries row scan")
    block = factors.u[rows] @ factors.v.T  # (|Q_A|, n_B)
    results: dict[int, list[ScoredPair]] = {}
    for i, node_a in enumerate(rows):
        order = np.argsort(-block[i], kind="stable")[:k]
        results[int(node_a)] = [
            ScoredPair(int(node_a), int(col), float(block[i, col]) / norm)
            for col in order
        ]
    if context is not None:
        context.metrics.increment("topk.rows_scanned", int(rows.size))
    return results
