"""Analytic cost models reproducing Table 1 of the paper.

Each :class:`CostModel` converts instance parameters (graph sizes, query
sizes, iteration count, algorithm constants) into predicted time "units"
(dominant-term operation counts) and bytes of working memory.  They serve
three purposes:

* documentation — executable Table 1;
* the experiment guards use the memory models to predict the paper's
  out-of-memory crashes deterministically;
* tests assert the models' scaling behaviour (e.g. GSim+ time is linear in
  ``m_A + m_B``, GSim memory is ``Θ(n_A n_B)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

__all__ = ["COST_MODELS", "CostModel", "InstanceParams", "predict_cost"]

_FLOAT64_BYTES = 8


@dataclass(frozen=True)
class InstanceParams:
    """Parameters describing one similarity-search instance.

    ``d_avg`` / ``d_max`` are the average / maximum degree of
    ``G_A ∪ G_B`` (used by the RSim / SS-BC* models), ``tree_level_width``
    is NED's ``L`` (average nodes per k-adjacent-tree level) and ``rank``
    is GSVD's fixed SVD rank ``r``.
    """

    n_a: int
    n_b: int
    m_a: int
    m_b: int
    q_a: int
    q_b: int
    iterations: int
    d_avg: float = 8.0
    d_max: int = 64
    tree_level_width: float = 16.0
    rank: int = 10


@dataclass(frozen=True)
class CostModel:
    """Dominant-term time/space model for one algorithm (one Table 1 row)."""

    name: str
    time_formula: str
    space_formula: str
    time: Callable[[InstanceParams], float]
    space_bytes: Callable[[InstanceParams], float]


def _embedding_width(p: InstanceParams) -> float:
    """The paper's ``l = min(2^K, n_A, n_B)``."""
    return float(min(2 ** min(p.iterations, 62), p.n_a, p.n_b))


def _log2_ceil(value: float) -> float:
    from math import ceil, log2

    return float(max(1, ceil(log2(max(value, 2.0)))))


COST_MODELS: dict[str, CostModel] = {
    "gsim+": CostModel(
        name="GSim+",
        time_formula="O(l (m_A + m_B + |Q_A||Q_B|)), l = min(2^K, n_A, n_B)",
        space_formula="O(min(l (n_A + n_B), n_A n_B))",
        # Once 2^k reaches min(n_A, n_B) the algorithm reverts to the dense
        # GSim update (paper §5.2.1 point 6), so neither time nor space
        # ever exceeds GSim's.
        time=lambda p: min(
            _embedding_width(p) * (p.m_a + p.m_b + p.q_a * p.q_b),
            (p.m_a * p.n_b + p.m_b * p.n_a) * p.iterations
            + p.q_a * p.q_b,
        ),
        space_bytes=lambda p: _FLOAT64_BYTES
        * min(_embedding_width(p) * (p.n_a + p.n_b), p.n_a * p.n_b),
    ),
    "gsvd": CostModel(
        name="GSVD",
        time_formula="O(r (m_A + m_B + n_A r + n_B r))",
        space_formula="O(n_A n_B)",
        time=lambda p: p.rank
        * (p.m_a + p.m_b + p.n_a * p.rank + p.n_b * p.rank)
        * p.iterations,
        space_bytes=lambda p: _FLOAT64_BYTES * p.n_a * p.n_b,
    ),
    "gsim": CostModel(
        name="GSim",
        time_formula="O(m_A n_B + m_B n_A) per iteration",
        space_formula="O(n_A n_B)",
        time=lambda p: (p.m_a * p.n_b + p.m_b * p.n_a) * p.iterations,
        space_bytes=lambda p: _FLOAT64_BYTES * p.n_a * p.n_b,
    ),
    "rsim": CostModel(
        name="RSim",
        time_formula="O(k (n_A + n_B)^2 d log d)",
        space_formula="O((n_A + n_B)^2)",
        time=lambda p: p.iterations
        * (p.n_a + p.n_b) ** 2
        * p.d_avg
        * _log2_ceil(p.d_avg),
        space_bytes=lambda p: _FLOAT64_BYTES * (p.n_a + p.n_b) ** 2,
    ),
    "ned": CostModel(
        name="NED",
        time_formula="O(|Q_A||Q_B| k L^3)",
        space_formula="O(d^(k+1))",
        # The harness caps NED's tree depth at 3 (deeper trees explode on
        # every non-trivial graph); the model predicts that effective depth.
        time=lambda p: p.q_a
        * p.q_b
        * min(p.iterations, 3)
        * p.tree_level_width**3,
        space_bytes=lambda p: _FLOAT64_BYTES
        * min(p.d_avg ** (min(p.iterations, 3) + 1), 1e18),
    ),
    "ss-bc": CostModel(
        name="SS-BC*",
        time_formula="O(|Q_A||Q_B| k log D)",
        space_formula="O(k (n_A + n_B) log D)",
        time=lambda p: p.q_a * p.q_b * p.iterations * _log2_ceil(p.d_max),
        space_bytes=lambda p: _FLOAT64_BYTES
        * p.iterations
        * (p.n_a + p.n_b)
        * _log2_ceil(p.d_max),
    ),
}


def predict_cost(algorithm: str, params: InstanceParams) -> tuple[float, float]:
    """Return ``(time_units, space_bytes)`` predicted for ``algorithm``.

    ``algorithm`` is a key of :data:`COST_MODELS` (case-insensitive).
    """
    key = algorithm.lower()
    if key not in COST_MODELS:
        raise KeyError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(COST_MODELS)}"
        )
    model = COST_MODELS[key]
    return model.time(params), model.space_bytes(params)
