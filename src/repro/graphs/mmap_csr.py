"""Out-of-core CSR graphs: ``np.memmap``-backed storage behind ``Graph``.

The paper's headline experiments run on billion-edge web crawls; holding
such a graph's CSR arrays (let alone building them from a raw edge list)
in RAM is exactly what this module avoids:

* :class:`MmapCSRGraph` — a :class:`repro.graphs.Graph` whose
  indptr/indices/data arrays (for both ``A`` and the precomputed ``A^T``)
  are read-only memory maps over an on-disk artifact.  Every algorithm
  above the ``Graph`` interface works unchanged; the OS pages CSR data in
  on demand and :meth:`release_pages` hands clean pages back mid-scan so
  resident memory tracks the *working set*, not the graph.
* :func:`convert_edge_list` — an atomic, checksummed, crash-resumable
  edge-list → artifact converter that reuses the strict/lenient parse
  modes of :mod:`repro.graphs.io` and the artifact conventions of
  :mod:`repro.runtime.resilience` (sibling-tmp + fsync + rename
  publishing, SHA-256 content checksums, a manifest written last).

Artifact layout (one directory per graph)::

    adj.indptr.bin    adj.indices.bin    adj.data.bin      # A
    adj_t.indptr.bin  adj_t.indices.bin  adj_t.data.bin    # A^T
    manifest.json       # dtypes, lengths, per-file SHA-256, written LAST
    progress.json       # conversion stage journal; deleted on completion

Arrays are raw native-endian buffers (dtype and length live in the
manifest), so a worker process can map any of them from an
(path, dtype, shape) descriptor without reading a header — see
:mod:`repro.runtime.procpool`.

The converter runs in bounded memory: two streaming parse passes (count,
scatter), a block-wise canonicalisation pass (duplicates summed, stored
zeros dropped, rows sorted — the same canonical form
:class:`repro.graphs.Graph` enforces, so the mapped graph is
entry-for-entry bit-identical to an in-memory load of the same file), and
an out-of-core transpose.  Each stage publishes its outputs atomically
and journals completion in ``progress.json``; a crash — including an
injected :class:`repro.runtime.FaultInjector` fault at any
``context.checkpoint`` — resumes at the first incomplete stage.
"""

from __future__ import annotations

import hashlib
import json
import mmap as _mmap_module
import os
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

import numpy as np
import scipy.sparse as sp

from repro.graphs.graph import Graph
from repro.graphs.io import _MODES, _parse_lines, _SkipCounter, _warn_skips
from repro.runtime.procpool import ArrayRef, CsrRef
from repro.runtime.resilience import atomic_write, content_checksum
from repro.utils.memory import resident_nbytes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.context import ExecutionContext

__all__ = ["MmapCSRGraph", "convert_edge_list"]

_FORMAT = "repro-mmap-csr-v1"
_ARRAY_NAMES = (
    "adj.indptr",
    "adj.indices",
    "adj.data",
    "adj_t.indptr",
    "adj_t.indices",
    "adj_t.data",
)
_VALUE_DTYPE = np.dtype(np.float64)


def _index_dtype(num_nodes: int, nnz: int) -> np.dtype:
    """int32 when every index fits (scipy's own choice), else int64."""
    if max(num_nodes, nnz) <= np.iinfo(np.int32).max:
        return np.dtype(np.int32)
    return np.dtype(np.int64)


def _file_sha256(path: Path, chunk: int = 1 << 22) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        while True:
            block = handle.read(chunk)
            if not block:
                break
            digest.update(block)
    return digest.hexdigest()


def _write_array(path: Path, array: np.ndarray) -> None:
    """Publish ``array`` atomically as a raw buffer."""
    with atomic_write(path) as tmp:
        with tmp.open("wb") as handle:
            handle.write(np.ascontiguousarray(array).tobytes())


class _Progress:
    """The conversion stage journal (atomic ``progress.json``)."""

    def __init__(self, root: Path) -> None:
        self.path = root / "progress.json"
        self.stages: dict[str, dict] = {}
        if self.path.exists():
            try:
                raw = json.loads(self.path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                raw = {}
            if raw.get("format") == _FORMAT:
                self.stages = raw.get("stages", {})

    def done(self, stage: str) -> dict | None:
        return self.stages.get(stage)

    def complete(self, stage: str, meta: dict) -> None:
        self.stages[stage] = meta
        with atomic_write(self.path) as tmp:
            tmp.write_text(
                json.dumps({"format": _FORMAT, "stages": self.stages}, indent=2),
                encoding="utf-8",
            )

    def clear(self) -> None:
        self.path.unlink(missing_ok=True)


class MmapCSRGraph(Graph):
    """A :class:`Graph` whose CSR arrays are read-only memory maps.

    Construct from a converted artifact directory (see
    :func:`convert_edge_list` / :meth:`from_graph`).  The full
    ``Graph`` API works unchanged; additionally:

    * :meth:`csr_ref` hands out (path, dtype, shape) descriptors for the
      process-pool backend, so worker processes map the same files
      instead of receiving pickled slices;
    * :meth:`release_pages` advises the kernel to drop the (clean) CSR
      pages, bounding resident memory during streaming scans;
    * :meth:`resident_bytes` reports the pages actually in RAM right
      now, which is what the memory ledger charges for mapped graphs.

    Examples
    --------
    >>> import tempfile
    >>> from repro.graphs import Graph
    >>> g = Graph.from_edges(3, [(0, 1), (1, 2)])
    >>> m = MmapCSRGraph.from_graph(g, tempfile.mkdtemp())
    >>> (m.num_nodes, m.num_edges) == (g.num_nodes, g.num_edges)
    True
    """

    __slots__ = ("_root", "_manifest", "_arrays")

    def __init__(self, root: str | Path, verify: bool = False) -> None:
        root = Path(root)
        manifest_path = root / "manifest.json"
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise FileNotFoundError(
                f"{root} is not a converted mmap-CSR artifact (no "
                "manifest.json; run convert_edge_list first)"
            ) from None
        if manifest.get("format") != _FORMAT:
            raise ValueError(
                f"{manifest_path} has format {manifest.get('format')!r}, "
                f"expected {_FORMAT!r}"
            )
        arrays: dict[str, np.ndarray] = {}
        for array_name in _ARRAY_NAMES:
            spec = manifest["arrays"][array_name]
            path = root / spec["file"]
            dtype = np.dtype(spec["dtype"])
            length = int(spec["length"])
            expected = dtype.itemsize * length
            actual = path.stat().st_size
            if actual != expected:
                raise ValueError(
                    f"{path} is {actual} bytes, manifest says {expected}; "
                    "artifact is truncated or stale"
                )
            if verify and length and _file_sha256(path) != spec["sha256"]:
                raise ValueError(f"{path} fails its manifest checksum")
            if length:
                arrays[array_name] = np.memmap(
                    path, dtype=dtype, mode="r", shape=(length,)
                )
            else:
                arrays[array_name] = np.empty(0, dtype=dtype)
        n = int(manifest["num_nodes"])
        # Bypass Graph.__init__: it would copy + re-canonicalise; the
        # artifact is canonical by construction and must stay mapped.
        self._adj = self._csr_view(arrays, "adj", n)
        self._adj_t = self._csr_view(arrays, "adj_t", n)
        self._name = str(manifest.get("name", root.name))
        self._root = root
        self._manifest = manifest
        self._arrays = arrays

    @staticmethod
    def _csr_view(
        arrays: dict[str, np.ndarray], prefix: str, n: int
    ) -> sp.csr_matrix:
        matrix = sp.csr_matrix((n, n), dtype=_VALUE_DTYPE)
        matrix.indptr = arrays[f"{prefix}.indptr"]
        matrix.indices = arrays[f"{prefix}.indices"]
        matrix.data = arrays[f"{prefix}.data"]
        # Canonical by construction (sorted, deduplicated, no stored
        # zeros); the flags stop scipy from mutating read-only maps.
        matrix.has_sorted_indices = True
        matrix.has_canonical_format = True
        return matrix

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, root: str | Path, verify: bool = False) -> "MmapCSRGraph":
        """Alias of the constructor, for symmetry with other artifacts."""
        return cls(root, verify=verify)

    @classmethod
    def from_graph(
        cls, graph: Graph, out_dir: str | Path, name: str | None = None
    ) -> "MmapCSRGraph":
        """Write an in-memory graph as an mmap artifact and map it back.

        The fast path for tests and benchmarks (no parsing); the arrays
        are written exactly as held, so the mapped graph's CSR entries
        are bit-identical to the source's.
        """
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        adj = graph.adjacency
        if not adj.has_sorted_indices:
            adj = adj.sorted_indices()
        adj_t = graph.adjacency_t
        if not adj_t.has_sorted_indices:
            adj_t = adj_t.sorted_indices()
        index_dtype = _index_dtype(graph.num_nodes, graph.num_edges)
        halves = {"adj": adj, "adj_t": adj_t}
        for prefix, matrix in halves.items():
            _write_array(
                out_dir / f"{prefix}.indptr.bin",
                matrix.indptr.astype(index_dtype, copy=False),
            )
            _write_array(
                out_dir / f"{prefix}.indices.bin",
                matrix.indices.astype(index_dtype, copy=False),
            )
            _write_array(
                out_dir / f"{prefix}.data.bin",
                matrix.data.astype(_VALUE_DTYPE, copy=False),
            )
        _publish_manifest(
            out_dir,
            name=name or graph.name,
            num_nodes=graph.num_nodes,
            nnz=graph.num_edges,
            index_dtype=index_dtype,
            source={"kind": "from_graph"},
        )
        return cls(out_dir)

    # ------------------------------------------------------------------
    # Out-of-core specifics
    # ------------------------------------------------------------------
    @property
    def root(self) -> Path:
        """The artifact directory this graph is mapped from."""
        return self._root

    def csr_ref(self, which: str = "adj") -> CsrRef:
        """Shard descriptor of ``A`` (``"adj"``) or ``A^T`` (``"adj_t"``)."""
        if which not in ("adj", "adj_t"):
            raise ValueError(f"which must be 'adj' or 'adj_t', got {which!r}")
        specs = self._manifest["arrays"]

        def _ref(part: str) -> ArrayRef:
            spec = specs[f"{which}.{part}"]
            return ArrayRef(
                path=str(self._root / spec["file"]),
                dtype=spec["dtype"],
                shape=(int(spec["length"]),),
            )

        n = self.num_nodes
        return CsrRef(
            indptr=_ref("indptr"),
            indices=_ref("indices"),
            data=_ref("data"),
            shape=(n, n),
        )

    def release_pages(self) -> None:
        """Advise the kernel to drop this graph's resident CSR pages.

        The mappings are read-only, so every page is clean and reloadable
        from disk; streaming scans call this between passes to keep the
        resident set at one window instead of the whole graph.
        """
        for array in self._arrays.values():
            mapping = getattr(array, "_mmap", None)
            if mapping is not None:
                try:
                    mapping.madvise(_mmap_module.MADV_DONTNEED)
                except (AttributeError, ValueError, OSError):  # pragma: no cover
                    return  # platform without madvise: RSS stays OS-managed

    def resident_bytes(self) -> int:
        """Bytes of CSR data currently resident in RAM (mincore probe)."""
        return sum(resident_nbytes(array) for array in self._arrays.values())

    def memory_bytes(self) -> int:
        """Virtual (fully-faulted) size of the mapped CSR structures.

        Deliberately the same definition as the in-memory ``Graph`` —
        what the graph *would* cost fully resident; the ledger charges
        :meth:`resident_bytes` instead for mapped graphs.
        """
        return super().memory_bytes()


# ----------------------------------------------------------------------
# Converter
# ----------------------------------------------------------------------
def _publish_manifest(
    root: Path,
    name: str,
    num_nodes: int,
    nnz: int,
    index_dtype: np.dtype,
    source: dict,
) -> None:
    """Checksum every array file and write ``manifest.json`` atomically.

    The manifest is written last, so its presence certifies a complete
    artifact; its own ``checksum`` field folds the per-file digests, so
    corruption of any component is detectable without re-hashing data.
    """
    arrays: dict[str, dict] = {}
    for array_name in _ARRAY_NAMES:
        path = root / f"{array_name}.bin"
        dtype = _VALUE_DTYPE if array_name.endswith(".data") else index_dtype
        size = path.stat().st_size
        if size % dtype.itemsize:
            raise ValueError(f"{path}: size {size} not a multiple of {dtype}")
        arrays[array_name] = {
            "file": path.name,
            "dtype": dtype.str,
            "length": size // dtype.itemsize,
            "sha256": _file_sha256(path),
        }
    manifest = {
        "format": _FORMAT,
        "name": name,
        "num_nodes": int(num_nodes),
        "nnz": int(nnz),
        "arrays": arrays,
        "source": source,
    }
    manifest["checksum"] = content_checksum(
        {array_name: spec["sha256"] for array_name, spec in arrays.items()}
        | {"num_nodes": int(num_nodes), "nnz": int(nnz)}
    )
    with atomic_write(root / "manifest.json") as tmp:
        tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True), encoding="utf-8")


def _iter_edge_chunks(
    path: Path,
    comment: str,
    mode: str,
    skips: _SkipCounter,
    chunk_edges: int,
) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Parse ``path`` into ``(src, dst, weight)`` array chunks.

    Wraps :func:`repro.graphs.io._parse_lines`, so strict/lenient line
    handling is byte-for-byte the one ``read_edge_list`` applies; the
    integer-id check mirrors ``_build_graph``'s non-relabelled branch.
    """
    sources = np.empty(chunk_edges, dtype=np.int64)
    targets = np.empty(chunk_edges, dtype=np.int64)
    weights = np.empty(chunk_edges, dtype=np.float64)
    filled = 0
    with path.open("r", encoding="utf-8") as handle:
        for lineno, src, dst, weight in _parse_lines(handle, comment, mode, skips):
            try:
                src_id, dst_id = int(src), int(dst)
            except ValueError:
                if mode == "lenient":
                    skips.skip(f"line {lineno}: non-integer node id {src!r}/{dst!r}")
                    continue
                raise ValueError(
                    f"line {lineno}: non-integer node id {src!r}/{dst!r}"
                ) from None
            if src_id < 0 or dst_id < 0:
                if mode == "lenient":
                    skips.skip(f"line {lineno}: negative node id")
                    continue
                raise ValueError(
                    f"line {lineno}: node ids must be non-negative"
                )
            sources[filled] = src_id
            targets[filled] = dst_id
            weights[filled] = weight
            filled += 1
            if filled == chunk_edges:
                yield sources[:filled], targets[:filled], weights[:filled]
                filled = 0
    if filled:
        yield sources[:filled], targets[:filled], weights[:filled]


def _checkpoint(context: "ExecutionContext | None", what: str) -> None:
    if context is not None:
        context.checkpoint(what)


def _count_stage(
    source: Path,
    root: Path,
    comment: str,
    mode: str,
    chunk_edges: int,
    context: "ExecutionContext | None",
) -> dict:
    """Pass 1: out-degree counts -> raw indptr; node count; raw nnz."""
    skips = _SkipCounter()
    counts = np.zeros(1024, dtype=np.int64)
    max_id = -1
    nnz = 0
    for src, dst, _ in _iter_edge_chunks(source, comment, mode, skips, chunk_edges):
        _checkpoint(context, f"mmap convert count @edge {nnz}")
        top = int(max(src.max(), dst.max()))
        max_id = max(max_id, top)
        if top >= counts.size:
            counts = np.concatenate(
                [counts, np.zeros(max(counts.size, top + 1 - counts.size), np.int64)]
            )
        counts += np.bincount(src, minlength=counts.size)
        nnz += src.size
    num_nodes = max_id + 1
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(counts[:num_nodes], out=indptr[1:])
    _write_array(root / "raw.indptr.bin", indptr)
    return {
        "num_nodes": num_nodes,
        "raw_nnz": nnz,
        "skipped": skips.skipped,
        "first_skip_reason": skips.first_reason,
    }


def _scatter_stage(
    source: Path,
    root: Path,
    comment: str,
    mode: str,
    chunk_edges: int,
    num_nodes: int,
    raw_nnz: int,
    context: "ExecutionContext | None",
) -> None:
    """Pass 2: scatter (dst, weight) into per-row slots, file order kept."""
    indptr = np.fromfile(root / "raw.indptr.bin", dtype=np.int64)
    cursor = indptr[:-1].copy()
    skips = _SkipCounter()  # already warned about in pass 1
    with atomic_write(root / "raw.indices.bin") as tmp_idx, atomic_write(
        root / "raw.data.bin"
    ) as tmp_dat:
        indices = np.memmap(tmp_idx, dtype=np.int64, mode="w+", shape=(max(raw_nnz, 1),))
        data = np.memmap(tmp_dat, dtype=np.float64, mode="w+", shape=(max(raw_nnz, 1),))
        seen = 0
        for src, dst, weight in _iter_edge_chunks(
            source, comment, mode, skips, chunk_edges
        ):
            _checkpoint(context, f"mmap convert scatter @edge {seen}")
            # Vectorised multi-scatter: group the chunk by source row
            # (stable, so file order within a row is preserved), then
            # place each group at its row cursor in one slice assignment.
            order = np.argsort(src, kind="stable")
            rows = src[order]
            boundaries = np.flatnonzero(np.diff(rows)) + 1
            groups = np.split(np.arange(rows.size), boundaries)
            for group in groups:
                row = int(rows[group[0]])
                at = cursor[row]
                indices[at : at + group.size] = dst[order[group]]
                data[at : at + group.size] = weight[order[group]]
                cursor[row] += group.size
            seen += src.size
        indices.flush()
        data.flush()
        del indices, data
        if raw_nnz == 0:
            # The placeholder element keeps np.memmap happy; truncate it.
            os.truncate(tmp_idx, 0)
            os.truncate(tmp_dat, 0)


def _canonical_stage(
    root: Path,
    num_nodes: int,
    raw_nnz: int,
    index_dtype: np.dtype,
    block_rows: int,
    context: "ExecutionContext | None",
) -> int:
    """Block-wise canonicalisation into the final ``adj.*`` arrays.

    Per row block: duplicates summed, stored zeros dropped, columns
    sorted — the same canonical form ``Graph.__init__`` enforces (sum
    first, then eliminate, so duplicate groups summing to zero vanish
    exactly as they do on the in-memory path).  Rows are processed in
    ascending order, so the final arrays are written append-only.
    """
    raw_indptr = np.fromfile(root / "raw.indptr.bin", dtype=np.int64)
    raw_indices = (
        np.memmap(root / "raw.indices.bin", dtype=np.int64, mode="r")
        if raw_nnz
        else np.empty(0, dtype=np.int64)
    )
    raw_data = (
        np.memmap(root / "raw.data.bin", dtype=np.float64, mode="r")
        if raw_nnz
        else np.empty(0, dtype=np.float64)
    )
    final_indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    nnz = 0
    with atomic_write(root / "adj.indices.bin") as tmp_idx, atomic_write(
        root / "adj.data.bin"
    ) as tmp_dat, tmp_idx.open("wb") as idx_handle, tmp_dat.open("wb") as dat_handle:
        for start in range(0, num_nodes, block_rows):
            stop = min(start + block_rows, num_nodes)
            _checkpoint(context, f"mmap convert canonical @row {start}")
            lo, hi = int(raw_indptr[start]), int(raw_indptr[stop])
            block = sp.csr_matrix(
                (
                    np.array(raw_data[lo:hi]),  # writable copies: the raw
                    np.array(raw_indices[lo:hi]),  # maps are read-only
                    raw_indptr[start : stop + 1] - lo,
                ),
                shape=(stop - start, num_nodes),
            )
            block.sum_duplicates()
            block.eliminate_zeros()
            block.sort_indices()
            idx_handle.write(
                block.indices.astype(index_dtype, copy=False).tobytes()
            )
            dat_handle.write(
                block.data.astype(_VALUE_DTYPE, copy=False).tobytes()
            )
            final_indptr[start + 1 : stop + 1] = nnz + block.indptr[1:]
            nnz += int(block.nnz)
    _write_array(root / "adj.indptr.bin", final_indptr.astype(index_dtype))
    return nnz


def _transpose_stage(
    root: Path,
    num_nodes: int,
    nnz: int,
    index_dtype: np.dtype,
    block_rows: int,
    context: "ExecutionContext | None",
) -> None:
    """Out-of-core ``A^T`` from the canonical ``A``.

    Scanning canonical rows in ascending order and appending each entry
    at its column's cursor yields transpose rows that are already sorted
    and duplicate-free — no second canonicalisation pass needed.
    """
    indptr = np.fromfile(root / "adj.indptr.bin", dtype=index_dtype).astype(np.int64)
    indices = (
        np.memmap(root / "adj.indices.bin", dtype=index_dtype, mode="r")
        if nnz
        else np.empty(0, dtype=index_dtype)
    )
    data = (
        np.memmap(root / "adj.data.bin", dtype=_VALUE_DTYPE, mode="r")
        if nnz
        else np.empty(0, dtype=_VALUE_DTYPE)
    )
    in_degrees = np.bincount(
        np.asarray(indices, dtype=np.int64), minlength=num_nodes
    )
    indptr_t = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(in_degrees, out=indptr_t[1:])
    cursor = indptr_t[:-1].copy()
    with atomic_write(root / "adj_t.indices.bin") as tmp_idx, atomic_write(
        root / "adj_t.data.bin"
    ) as tmp_dat:
        indices_t = np.memmap(
            tmp_idx, dtype=index_dtype, mode="w+", shape=(max(nnz, 1),)
        )
        data_t = np.memmap(
            tmp_dat, dtype=_VALUE_DTYPE, mode="w+", shape=(max(nnz, 1),)
        )
        for start in range(0, num_nodes, block_rows):
            stop = min(start + block_rows, num_nodes)
            _checkpoint(context, f"mmap convert transpose @row {start}")
            lo, hi = int(indptr[start]), int(indptr[stop])
            if hi == lo:
                continue
            cols = np.asarray(indices[lo:hi], dtype=np.int64)
            vals = np.asarray(data[lo:hi])
            rows = np.repeat(
                np.arange(start, stop, dtype=np.int64),
                np.diff(indptr[start : stop + 1]),
            )
            # Stable sort by column; ranks within each column group give
            # collision-free slots even with duplicate columns per chunk.
            order = np.argsort(cols, kind="stable")
            sorted_cols = cols[order]
            uniques, counts = np.unique(sorted_cols, return_counts=True)
            group_starts = np.cumsum(counts) - counts
            within = np.arange(sorted_cols.size) - np.repeat(group_starts, counts)
            slots = np.repeat(cursor[uniques], counts) + within
            indices_t[slots] = rows[order]
            data_t[slots] = vals[order]
            cursor[uniques] += counts
        indices_t.flush()
        data_t.flush()
        del indices_t, data_t
        if nnz == 0:
            os.truncate(tmp_idx, 0)
            os.truncate(tmp_dat, 0)
    _write_array(root / "adj_t.indptr.bin", indptr_t.astype(index_dtype))


def convert_edge_list(
    source: str | Path,
    out_dir: str | Path,
    mode: str = "strict",
    comment: str = "#",
    name: str | None = None,
    chunk_edges: int = 1 << 20,
    block_rows: int = 1 << 16,
    resume: bool = True,
    context: "ExecutionContext | None" = None,
) -> MmapCSRGraph:
    """Convert an edge-list file into an mmap-CSR artifact directory.

    Parameters
    ----------
    source:
        Edge-list file (``src dst [weight]`` per line, SNAP-style
        ``#`` comments); node ids must be non-negative integers (use
        :func:`repro.graphs.read_edge_list` with ``relabel=True`` for
        arbitrary tokens — relabelling needs a token table, which
        defeats streaming).
    mode:
        ``"strict"`` (default) raises on any malformed line;
        ``"lenient"`` skips malformed lines and emits one counted
        ``RuntimeWarning`` — the exact semantics of
        :func:`repro.graphs.io.read_edge_list`.
    chunk_edges, block_rows:
        Streaming granularity of the parse passes and the
        canonicalise/transpose passes; peak memory is
        ``O(num_nodes + chunk_edges + block nnz)``, never ``O(nnz)``.
    resume:
        When True (default) a partially-converted directory continues
        from its first incomplete stage (journalled in
        ``progress.json``); when False any prior progress is discarded.
    context:
        Optional :class:`repro.runtime.ExecutionContext`; the converter
        checkpoints per chunk (label ``"mmap convert <stage>"``), so
        deadlines, cancellation, and injected faults stop it between
        chunks — and the atomic stage publishing guarantees a later
        ``resume=True`` call completes with a bit-identical artifact.

    Returns the mapped :class:`MmapCSRGraph`.  Idempotent: a directory
    whose manifest already exists is just loaded back.
    """
    if mode not in _MODES:
        raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
    source = Path(source)
    root = Path(out_dir)
    root.mkdir(parents=True, exist_ok=True)
    if (root / "manifest.json").exists():
        return MmapCSRGraph(root)
    progress = _Progress(root)
    if not resume:
        progress.stages = {}
        progress.clear()

    def _metric(event: str, value: int = 1) -> None:
        if context is not None:
            context.metrics.increment(f"mmap_convert.{event}", value)

    count_meta = progress.done("count")
    if count_meta is None:
        count_meta = _count_stage(source, root, comment, mode, chunk_edges, context)
        if count_meta["skipped"]:
            skips = _SkipCounter()
            skips.skipped = count_meta["skipped"]
            skips.first_reason = count_meta.get("first_skip_reason")
            _warn_skips(skips, str(source))
        progress.complete("count", count_meta)
        _metric("stages_run")
    else:
        _metric("stages_resumed")
    num_nodes = int(count_meta["num_nodes"])
    raw_nnz = int(count_meta["raw_nnz"])
    index_dtype = _index_dtype(num_nodes, raw_nnz)

    if progress.done("scatter") is None:
        _scatter_stage(
            source, root, comment, mode, chunk_edges, num_nodes, raw_nnz, context
        )
        progress.complete("scatter", {})
        _metric("stages_run")
    else:
        _metric("stages_resumed")

    canonical_meta = progress.done("canonical")
    if canonical_meta is None:
        nnz = _canonical_stage(
            root, num_nodes, raw_nnz, index_dtype, block_rows, context
        )
        canonical_meta = {"nnz": nnz}
        progress.complete("canonical", canonical_meta)
        _metric("stages_run")
    else:
        _metric("stages_resumed")
    nnz = int(canonical_meta["nnz"])

    if progress.done("transpose") is None:
        _transpose_stage(root, num_nodes, nnz, index_dtype, block_rows, context)
        progress.complete("transpose", {})
        _metric("stages_run")
    else:
        _metric("stages_resumed")

    _checkpoint(context, "mmap convert manifest")
    _publish_manifest(
        root,
        name=name or source.stem,
        num_nodes=num_nodes,
        nnz=nnz,
        index_dtype=index_dtype,
        source={
            "kind": "edge_list",
            "path": str(source),
            "mode": mode,
            "skipped_lines": int(count_meta["skipped"]),
        },
    )
    for stale in ("raw.indptr.bin", "raw.indices.bin", "raw.data.bin"):
        (root / stale).unlink(missing_ok=True)
    progress.clear()
    _metric("completed")
    return MmapCSRGraph(root)
