"""Edge-list readers and writers.

Supports the plain whitespace/tab-separated edge-list format used by the
SNAP datasets the paper evaluates on (``# comment`` headers, one
``src dst [weight]`` pair per line), plus relabelling of arbitrary node ids
to the contiguous ``0..n-1`` range :class:`repro.graphs.Graph` requires.

Two parse modes handle the reality of scraped billion-edge dumps:

``strict`` (the default)
    Any malformed line — wrong field count, unparsable weight,
    non-integer or negative id without ``relabel`` — raises ``ValueError``
    naming the offending line number.  Right for curated inputs where a
    bad line means a bad pipeline.
``lenient``
    Malformed lines are skipped and counted; one ``RuntimeWarning``
    summarising the skip count fires at the end.  Right for raw crawls
    where a handful of torn lines should not abort an hours-long load.
"""

from __future__ import annotations

import io
import warnings
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from repro.graphs.graph import Graph

__all__ = [
    "read_edge_list",
    "read_edge_list_text",
    "write_edge_list",
]

_MODES = ("strict", "lenient")


class _SkipCounter:
    """Counts lines dropped by lenient parsing (shared across stages)."""

    def __init__(self) -> None:
        self.skipped = 0
        self.first_reason: str | None = None

    def skip(self, reason: str) -> None:
        self.skipped += 1
        if self.first_reason is None:
            self.first_reason = reason


def _check_mode(mode: str) -> None:
    if mode not in _MODES:
        raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")


def _parse_lines(
    lines: Iterable[str],
    comment: str,
    mode: str = "strict",
    skips: _SkipCounter | None = None,
) -> Iterator[tuple[int, str, str, float]]:
    """Yield ``(lineno, src_token, dst_token, weight)`` from raw lines."""
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith(comment):
            continue
        parts = line.split()
        if len(parts) == 2:
            src, dst = parts
            weight = 1.0
        elif len(parts) == 3:
            src, dst = parts[0], parts[1]
            try:
                weight = float(parts[2])
            except ValueError as exc:
                if mode == "lenient":
                    assert skips is not None
                    skips.skip(f"line {lineno}: invalid weight {parts[2]!r}")
                    continue
                raise ValueError(
                    f"line {lineno}: invalid weight {parts[2]!r}"
                ) from exc
        else:
            if mode == "lenient":
                assert skips is not None
                skips.skip(
                    f"line {lineno}: expected 'src dst [weight]', got {line!r}"
                )
                continue
            raise ValueError(
                f"line {lineno}: expected 'src dst [weight]', got {line!r}"
            )
        yield lineno, src, dst, weight


def _build_graph(
    quads: Iterable[tuple[int, str, str, float]],
    relabel: bool,
    name: str,
    mode: str = "strict",
    skips: _SkipCounter | None = None,
) -> tuple[Graph, dict[str, int]]:
    """Construct a Graph from parsed records, optionally relabelling ids."""
    labels: dict[str, int] = {}
    edges: list[tuple[int, int, float]] = []
    max_id = -1
    for lineno, src, dst, weight in quads:
        if relabel:
            src_id = labels.setdefault(src, len(labels))
            dst_id = labels.setdefault(dst, len(labels))
        else:
            try:
                src_id, dst_id = int(src), int(dst)
            except ValueError as exc:
                if mode == "lenient":
                    assert skips is not None
                    skips.skip(
                        f"line {lineno}: non-integer node id {src!r}/{dst!r}"
                    )
                    continue
                raise ValueError(
                    f"line {lineno}: non-integer node id {src!r}/{dst!r}; "
                    "pass relabel=True"
                ) from exc
            if src_id < 0 or dst_id < 0:
                if mode == "lenient":
                    assert skips is not None
                    skips.skip(f"line {lineno}: negative node id")
                    continue
                raise ValueError(
                    f"line {lineno}: node ids must be non-negative "
                    "without relabelling"
                )
        max_id = max(max_id, src_id, dst_id)
        edges.append((src_id, dst_id, weight))
    num_nodes = len(labels) if relabel else max_id + 1
    return Graph.from_edges(num_nodes, edges, name=name), labels


def _warn_skips(skips: _SkipCounter, source: str) -> None:
    if skips.skipped:
        warnings.warn(
            f"{source}: skipped {skips.skipped} malformed line(s) in "
            f"lenient mode (first: {skips.first_reason})",
            RuntimeWarning,
            stacklevel=3,
        )


def read_edge_list(
    path: str | Path,
    relabel: bool = False,
    comment: str = "#",
    name: str | None = None,
    mode: str = "strict",
) -> Graph:
    """Read a directed graph from an edge-list file.

    Parameters
    ----------
    path:
        File with one ``src dst [weight]`` record per line.
    relabel:
        If True, arbitrary (even non-numeric) node tokens are mapped to
        ``0..n-1`` in first-appearance order.  If False, tokens must already
        be non-negative integers and the node count is ``max_id + 1``.
    comment:
        Lines starting with this prefix are skipped (SNAP uses ``#``).
    name:
        Graph name; defaults to the file stem.
    mode:
        ``"strict"`` (default) raises ``ValueError`` with the line number
        on any malformed line; ``"lenient"`` skips malformed lines and
        emits one counted ``RuntimeWarning``.
    """
    _check_mode(mode)
    path = Path(path)
    skips = _SkipCounter()
    with path.open("r", encoding="utf-8") as handle:
        graph, _ = _build_graph(
            _parse_lines(handle, comment, mode, skips),
            relabel,
            name or path.stem,
            mode,
            skips,
        )
    _warn_skips(skips, str(path))
    return graph


def read_edge_list_text(
    text: str,
    relabel: bool = False,
    comment: str = "#",
    name: str = "graph",
    mode: str = "strict",
) -> Graph:
    """Like :func:`read_edge_list` but parses an in-memory string."""
    _check_mode(mode)
    buffer = io.StringIO(text)
    skips = _SkipCounter()
    graph, _ = _build_graph(
        _parse_lines(buffer, comment, mode, skips), relabel, name, mode, skips
    )
    _warn_skips(skips, name)
    return graph


def write_edge_list(
    graph: Graph,
    path: str | Path | TextIO,
    write_weights: bool = False,
    header: bool = True,
) -> None:
    """Write ``graph`` as a SNAP-style edge list.

    Parameters
    ----------
    write_weights:
        Emit ``src dst weight`` lines instead of ``src dst``.
    header:
        Emit a ``# nodes=<n> edges=<m>`` comment header.
    """

    def _emit(handle: TextIO) -> None:
        if header:
            handle.write(
                f"# name={graph.name} nodes={graph.num_nodes} edges={graph.num_edges}\n"
            )
        for src, dst, weight in graph.edges():
            if write_weights:
                handle.write(f"{src}\t{dst}\t{weight:g}\n")
            else:
                handle.write(f"{src}\t{dst}\n")

    if isinstance(path, (str, Path)):
        with Path(path).open("w", encoding="utf-8") as handle:
            _emit(handle)
    else:
        _emit(path)
