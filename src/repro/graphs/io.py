"""Edge-list readers and writers.

Supports the plain whitespace/tab-separated edge-list format used by the
SNAP datasets the paper evaluates on (``# comment`` headers, one
``src dst [weight]`` pair per line), plus relabelling of arbitrary node ids
to the contiguous ``0..n-1`` range :class:`repro.graphs.Graph` requires.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from repro.graphs.graph import Graph

__all__ = [
    "read_edge_list",
    "read_edge_list_text",
    "write_edge_list",
]


def _parse_lines(
    lines: Iterable[str], comment: str
) -> Iterator[tuple[str, str, float]]:
    """Yield ``(src_token, dst_token, weight)`` from raw text lines."""
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith(comment):
            continue
        parts = line.split()
        if len(parts) == 2:
            src, dst = parts
            weight = 1.0
        elif len(parts) == 3:
            src, dst = parts[0], parts[1]
            try:
                weight = float(parts[2])
            except ValueError as exc:
                raise ValueError(
                    f"line {lineno}: invalid weight {parts[2]!r}"
                ) from exc
        else:
            raise ValueError(
                f"line {lineno}: expected 'src dst [weight]', got {line!r}"
            )
        yield src, dst, weight


def _build_graph(
    triples: Iterable[tuple[str, str, float]],
    relabel: bool,
    name: str,
) -> tuple[Graph, dict[str, int]]:
    """Construct a Graph from parsed triples, optionally relabelling ids."""
    labels: dict[str, int] = {}
    edges: list[tuple[int, int, float]] = []
    max_id = -1
    for src, dst, weight in triples:
        if relabel:
            src_id = labels.setdefault(src, len(labels))
            dst_id = labels.setdefault(dst, len(labels))
        else:
            try:
                src_id, dst_id = int(src), int(dst)
            except ValueError as exc:
                raise ValueError(
                    f"non-integer node id {src!r}/{dst!r}; pass relabel=True"
                ) from exc
            if src_id < 0 or dst_id < 0:
                raise ValueError("node ids must be non-negative without relabelling")
        max_id = max(max_id, src_id, dst_id)
        edges.append((src_id, dst_id, weight))
    num_nodes = len(labels) if relabel else max_id + 1
    return Graph.from_edges(num_nodes, edges, name=name), labels


def read_edge_list(
    path: str | Path,
    relabel: bool = False,
    comment: str = "#",
    name: str | None = None,
) -> Graph:
    """Read a directed graph from an edge-list file.

    Parameters
    ----------
    path:
        File with one ``src dst [weight]`` record per line.
    relabel:
        If True, arbitrary (even non-numeric) node tokens are mapped to
        ``0..n-1`` in first-appearance order.  If False, tokens must already
        be non-negative integers and the node count is ``max_id + 1``.
    comment:
        Lines starting with this prefix are skipped (SNAP uses ``#``).
    name:
        Graph name; defaults to the file stem.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        graph, _ = _build_graph(
            _parse_lines(handle, comment), relabel, name or path.stem
        )
    return graph


def read_edge_list_text(
    text: str,
    relabel: bool = False,
    comment: str = "#",
    name: str = "graph",
) -> Graph:
    """Like :func:`read_edge_list` but parses an in-memory string."""
    buffer = io.StringIO(text)
    graph, _ = _build_graph(_parse_lines(buffer, comment), relabel, name)
    return graph


def write_edge_list(
    graph: Graph,
    path: str | Path | TextIO,
    write_weights: bool = False,
    header: bool = True,
) -> None:
    """Write ``graph`` as a SNAP-style edge list.

    Parameters
    ----------
    write_weights:
        Emit ``src dst weight`` lines instead of ``src dst``.
    header:
        Emit a ``# nodes=<n> edges=<m>`` comment header.
    """

    def _emit(handle: TextIO) -> None:
        if header:
            handle.write(
                f"# name={graph.name} nodes={graph.num_nodes} edges={graph.num_edges}\n"
            )
        for src, dst, weight in graph.edges():
            if write_weights:
                handle.write(f"{src}\t{dst}\t{weight:g}\n")
            else:
                handle.write(f"{src}\t{dst}\n")

    if isinstance(path, (str, Path)):
        with Path(path).open("w", encoding="utf-8") as handle:
            _emit(handle)
    else:
        _emit(path)
