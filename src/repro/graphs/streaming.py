"""Bounded-memory edge-list ingestion.

The paper's graphs run to a billion edges; a parser that accumulates
Python tuples per edge would need hundreds of GB before the CSR matrix
even exists.  :func:`read_edge_list_streaming` reads fixed-size *chunks*
of the file into preallocated NumPy buffers and folds each chunk into a
growing ``scipy.sparse`` accumulator, so peak memory is
``O(chunk_size + nnz-so-far)`` rather than ``O(lines x tuple overhead)``.

This is the loader a full-scale run of the ``paper`` profile would use;
the tests exercise it on small files and verify it is byte-for-byte
equivalent to :func:`repro.graphs.io.read_edge_list`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, TextIO

import numpy as np
import scipy.sparse as sp

from repro.graphs.graph import Graph
from repro.utils.validation import check_positive_integer

__all__ = ["iter_edge_chunks", "read_edge_list_streaming"]


def iter_edge_chunks(
    handle: TextIO,
    chunk_size: int = 1_000_000,
    comment: str = "#",
) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Yield ``(sources, targets, weights)`` arrays per file chunk.

    Malformed lines raise ``ValueError`` with the offending line number.
    """
    chunk_size = check_positive_integer(chunk_size, "chunk_size")
    sources = np.empty(chunk_size, dtype=np.int64)
    targets = np.empty(chunk_size, dtype=np.int64)
    weights = np.empty(chunk_size, dtype=np.float64)
    filled = 0
    for lineno, raw in enumerate(handle, start=1):
        line = raw.strip()
        if not line or line.startswith(comment):
            continue
        parts = line.split()
        try:
            if len(parts) == 2:
                src, dst, weight = int(parts[0]), int(parts[1]), 1.0
            elif len(parts) == 3:
                src, dst, weight = int(parts[0]), int(parts[1]), float(parts[2])
            else:
                raise ValueError("wrong field count")
        except ValueError as exc:
            raise ValueError(f"line {lineno}: cannot parse {line!r}") from exc
        if src < 0 or dst < 0:
            raise ValueError(f"line {lineno}: negative node id in {line!r}")
        sources[filled] = src
        targets[filled] = dst
        weights[filled] = weight
        filled += 1
        if filled == chunk_size:
            yield sources.copy(), targets.copy(), weights.copy()
            filled = 0
    if filled:
        yield sources[:filled].copy(), targets[:filled].copy(), weights[:filled].copy()


def read_edge_list_streaming(
    path: str | Path,
    chunk_size: int = 1_000_000,
    comment: str = "#",
    num_nodes: int | None = None,
    name: str | None = None,
) -> Graph:
    """Read a potentially huge edge list with bounded parser memory.

    Parameters
    ----------
    chunk_size:
        Lines buffered per chunk; peak parser memory is ~24 bytes per
        buffered line plus the accumulated sparse matrix.
    num_nodes:
        Total node count if known in advance (lets every chunk build
        same-shaped matrices immediately).  When ``None``, chunks are
        staged and sized after the maximum id is known.
    """
    path = Path(path)
    staged: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    max_id = -1
    accumulator: sp.coo_matrix | None = None

    def _fold(chunk, shape) -> sp.csr_matrix:
        sources, targets, weights = chunk
        return sp.csr_matrix((weights, (sources, targets)), shape=shape)

    with path.open("r", encoding="utf-8") as handle:
        for chunk in iter_edge_chunks(handle, chunk_size=chunk_size, comment=comment):
            sources, targets, _ = chunk
            if sources.size:
                max_id = max(max_id, int(sources.max()), int(targets.max()))
            if num_nodes is not None:
                shape = (num_nodes, num_nodes)
                matrix = _fold(chunk, shape)
                accumulator = matrix if accumulator is None else accumulator + matrix
            else:
                staged.append(chunk)

    if num_nodes is None:
        num_nodes = max_id + 1 if max_id >= 0 else 0
        shape = (num_nodes, num_nodes)
        for chunk in staged:
            matrix = _fold(chunk, shape)
            accumulator = matrix if accumulator is None else accumulator + matrix
    if accumulator is None:
        accumulator = sp.csr_matrix((num_nodes, num_nodes))
    return Graph(accumulator, name=name or path.stem)
