"""The core :class:`Graph` abstraction.

A ``Graph`` is a directed graph over nodes ``0 .. n-1`` whose adjacency is
stored as a ``scipy.sparse.csr_matrix`` with float64 weights.  All the
similarity algorithms in this library consume this class; they never touch
raw edge lists.

Design notes
------------
* The adjacency is kept in CSR because every algorithm's inner loop is a
  sparse-times-dense product (``A @ U``) or its transpose; CSR gives both
  via a cached CSC view of ``A.T``.
* Instances are immutable by convention: mutating helpers return new
  ``Graph`` objects.  The underlying matrices are marked read-only where
  NumPy allows.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np
import scipy.sparse as sp

from repro.utils.validation import check_nonnegative_integer, resolve_node_index

__all__ = ["Graph"]


class Graph:
    """An immutable directed graph backed by a CSR adjacency matrix.

    Parameters
    ----------
    adjacency:
        A square ``scipy.sparse`` matrix or a 2-D array-like.  Entry
        ``adjacency[i, j]`` is the weight of edge ``i -> j`` (0 = absent).
    name:
        Optional human-readable name used in reports.

    Examples
    --------
    >>> g = Graph.from_edges(3, [(0, 1), (1, 2)])
    >>> g.num_nodes, g.num_edges
    (3, 2)
    >>> sorted(g.successors(0))
    [1]
    """

    __slots__ = ("_adj", "_adj_t", "_name")

    def __init__(self, adjacency: sp.spmatrix | np.ndarray, name: str = "graph") -> None:
        matrix = sp.csr_matrix(adjacency, dtype=np.float64)
        if matrix.shape[0] != matrix.shape[1]:
            raise ValueError(
                f"adjacency must be square, got shape {matrix.shape}"
            )
        if matrix.nnz and not np.isfinite(matrix.data).all():
            raise ValueError(
                "adjacency contains non-finite weights (NaN or infinity); "
                "similarity iterations would silently poison every score"
            )
        matrix.eliminate_zeros()
        matrix.sum_duplicates()
        self._adj = matrix
        # Cached CSR form of A.T, built on first access: A^T products
        # dominate every iteration, so the conversion is paid at most once
        # per graph — and never for graphs that only serve A products.
        self._adj_t: sp.csr_matrix | None = None
        self._name = str(name)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_nodes: int,
        edges: Iterable[tuple[int, int]] | Iterable[tuple[int, int, float]],
        name: str = "graph",
    ) -> "Graph":
        """Build a graph from an iterable of ``(src, dst)`` or
        ``(src, dst, weight)`` tuples.

        Duplicate edges are summed.  Node ids must be in ``[0, num_nodes)``.
        """
        num_nodes = check_nonnegative_integer(num_nodes, "num_nodes")
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        for edge in edges:
            if len(edge) == 2:
                src, dst = edge  # type: ignore[misc]
                weight = 1.0
            elif len(edge) == 3:
                src, dst, weight = edge  # type: ignore[misc]
            else:
                raise ValueError(f"edge tuples must have 2 or 3 items, got {edge!r}")
            if not (0 <= src < num_nodes and 0 <= dst < num_nodes):
                raise ValueError(
                    f"edge ({src}, {dst}) out of range for {num_nodes} nodes"
                )
            rows.append(int(src))
            cols.append(int(dst))
            vals.append(float(weight))
        matrix = sp.csr_matrix(
            (vals, (rows, cols)), shape=(num_nodes, num_nodes), dtype=np.float64
        )
        return cls(matrix, name=name)

    @classmethod
    def empty(cls, num_nodes: int, name: str = "empty") -> "Graph":
        """An edgeless graph with ``num_nodes`` nodes."""
        num_nodes = check_nonnegative_integer(num_nodes, "num_nodes")
        return cls(sp.csr_matrix((num_nodes, num_nodes), dtype=np.float64), name=name)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Human-readable graph name."""
        return self._name

    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self._adj.shape[0]

    @property
    def num_edges(self) -> int:
        """Number of stored (non-zero) directed edges ``m``."""
        return int(self._adj.nnz)

    @property
    def adjacency(self) -> sp.csr_matrix:
        """The CSR adjacency matrix ``A`` (do not mutate)."""
        return self._adj

    @property
    def adjacency_t(self) -> sp.csr_matrix:
        """``A.T`` converted to CSR once and cached (do not mutate).

        The benign race of two threads building the cache concurrently
        just computes the same matrix twice; the attribute write is
        atomic, so readers always see either ``None`` or a complete CSR.
        """
        if self._adj_t is None:
            self._adj_t = self._adj.transpose().tocsr()
        return self._adj_t

    @property
    def density(self) -> float:
        """Edge density ``m / n^2`` (0 for the empty graph)."""
        n = self.num_nodes
        if n == 0:
            return 0.0
        return self.num_edges / float(n * n)

    @property
    def average_degree(self) -> float:
        """Average out-degree ``m / n`` (0 for the empty graph)."""
        n = self.num_nodes
        if n == 0:
            return 0.0
        return self.num_edges / float(n)

    # ------------------------------------------------------------------
    # Degrees and neighbourhoods
    # ------------------------------------------------------------------
    def out_degrees(self) -> np.ndarray:
        """Array of out-degrees (edge counts, ignoring weights)."""
        return np.diff(self._adj.indptr)

    def in_degrees(self) -> np.ndarray:
        """Array of in-degrees (edge counts, ignoring weights)."""
        return np.diff(self.adjacency_t.indptr)

    def max_degree(self) -> int:
        """Maximum of in- and out-degree over all nodes (0 if edgeless)."""
        if self.num_nodes == 0:
            return 0
        degrees = np.concatenate([self.out_degrees(), self.in_degrees()])
        return int(degrees.max(initial=0))

    def successors(self, node: int) -> np.ndarray:
        """Out-neighbours of ``node`` as an int array."""
        self._check_node(node)
        start, stop = self._adj.indptr[node], self._adj.indptr[node + 1]
        return self._adj.indices[start:stop].copy()

    def predecessors(self, node: int) -> np.ndarray:
        """In-neighbours of ``node`` as an int array."""
        self._check_node(node)
        start, stop = self.adjacency_t.indptr[node], self.adjacency_t.indptr[node + 1]
        return self.adjacency_t.indices[start:stop].copy()

    def neighbors(self, node: int) -> np.ndarray:
        """Union of in- and out-neighbours of ``node`` (sorted, deduplicated)."""
        return np.unique(
            np.concatenate([self.successors(node), self.predecessors(node)])
        )

    def has_edge(self, src: int, dst: int) -> bool:
        """Whether the directed edge ``src -> dst`` exists."""
        self._check_node(src)
        self._check_node(dst)
        return bool(self._adj[src, dst] != 0)

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate over ``(src, dst, weight)`` triples in CSR order."""
        coo = self._adj.tocoo()
        for src, dst, weight in zip(coo.row, coo.col, coo.data):
            yield int(src), int(dst), float(weight)

    # ------------------------------------------------------------------
    # Derived graphs (all return new instances)
    # ------------------------------------------------------------------
    def reversed(self) -> "Graph":
        """The graph with every edge direction flipped."""
        return Graph(self.adjacency_t, name=f"{self._name}-reversed")

    def to_undirected(self) -> "Graph":
        """Symmetrise: edge i~j present if either direction exists.

        Weights of antiparallel edges are merged by maximum, matching the
        convention used by the role-similarity baselines that operate on
        undirected structure.
        """
        sym = self._adj.maximum(self.adjacency_t)
        return Graph(sym, name=f"{self._name}-undirected")

    def subgraph(self, nodes: Iterable[int], name: str | None = None) -> "Graph":
        """Induced subgraph on ``nodes``, relabelled to ``0..len(nodes)-1``.

        Node order in ``nodes`` determines the new labels; duplicates are
        rejected.
        """
        index = resolve_node_index(
            list(nodes),
            self.num_nodes,
            "subgraph nodes",
            allow_empty=True,
            bounds_error=ValueError,
        )
        sub = self._adj[index][:, index]
        return Graph(sub, name=name or f"{self._name}-sub{index.size}")

    def union_disjoint(self, other: "Graph", name: str | None = None) -> "Graph":
        """Disjoint union: ``other``'s nodes are shifted by ``self.num_nodes``.

        Used by the RoleSim baseline, which evaluates pairs within the
        combined graph ``G_A ∪ G_B``.
        """
        combined = sp.block_diag(
            (self._adj, other.adjacency), format="csr", dtype=np.float64
        )
        return Graph(combined, name=name or f"{self._name}+{other.name}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Approximate bytes held by the CSR structures (A and A.T)."""
        total = 0
        for matrix in (self._adj, self.adjacency_t):
            total += matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes
        return total

    def __repr__(self) -> str:
        return (
            f"Graph(name={self._name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if self.num_nodes != other.num_nodes:
            return False
        return (self._adj != other.adjacency).nnz == 0

    def __hash__(self) -> int:  # pragma: no cover - identity hashing only
        return id(self)

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self.num_nodes):
            raise IndexError(
                f"node {node} out of range for graph with {self.num_nodes} nodes"
            )
