"""Graph substrate: representation, IO, synthetic generators, sampling.

The similarity algorithms in :mod:`repro.core` and :mod:`repro.baselines`
operate on :class:`repro.graphs.Graph`, an immutable directed graph backed
by a ``scipy.sparse.csr_matrix`` adjacency.
"""

from repro.graphs.algorithms import (
    degree_statistics,
    largest_weakly_connected_subgraph,
    strongly_connected_components,
    weakly_connected_components,
)
from repro.graphs.datasets import DATASETS, DatasetSpec, load_dataset, load_dataset_pair
from repro.graphs.generators import (
    barabasi_albert_graph,
    chung_lu_graph,
    directed_block_graph,
    erdos_renyi_graph,
    rmat_graph,
    stochastic_block_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.io import (
    read_edge_list,
    read_edge_list_text,
    write_edge_list,
)
from repro.graphs.sampling import (
    bfs_sample,
    forest_fire_sample,
    random_node_sample,
)
from repro.graphs.interop import from_networkx, to_networkx
from repro.graphs.mmap_csr import MmapCSRGraph, convert_edge_list
from repro.graphs.streaming import read_edge_list_streaming

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "Graph",
    "MmapCSRGraph",
    "barabasi_albert_graph",
    "bfs_sample",
    "chung_lu_graph",
    "convert_edge_list",
    "degree_statistics",
    "directed_block_graph",
    "erdos_renyi_graph",
    "forest_fire_sample",
    "from_networkx",
    "largest_weakly_connected_subgraph",
    "load_dataset",
    "load_dataset_pair",
    "random_node_sample",
    "read_edge_list",
    "read_edge_list_streaming",
    "read_edge_list_text",
    "rmat_graph",
    "stochastic_block_graph",
    "strongly_connected_components",
    "to_networkx",
    "weakly_connected_components",
    "write_edge_list",
]
