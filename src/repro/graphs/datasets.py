"""Scaled, simulated stand-ins for the paper's evaluation datasets.

The paper evaluates on five public graphs::

    HP  ego-Facebook social friendship   n=34,546      m=421,578       m/n=12.2
    EE  email-EU communication           n=265,214     m=420,045       m/n=1.6
    WT  wiki-Talk communication          n=2,394,385   m=5,021,410     m/n=2.1
    UK  uk-2002 web crawl                n=18,520,486  m=298,113,762   m/n=16.1
    IT  it-2004 web crawl                n=41,291,594  m=1,150,725,436 m/n=27.9

This container has neither network access to SNAP/LAW nor the authors'
256 GB testbed, so each dataset is *simulated*: a seeded generator matched
to the dataset's family (preferential attachment for the social graph,
power-law Chung-Lu for the communication graphs, R-MAT for the web crawls)
reproduces the published edge/node ratio at reduced **scale profiles**:

    tiny   — hundreds of nodes; dense baselines and exact references feasible
    small  — thousands of nodes; the default benchmark profile
    medium — tens of thousands; stresses memory guards like the paper's WT
    paper  — the published sizes (documented; far beyond this machine)

The similarity algorithms only ever see an adjacency matrix, so a stand-in
with the same size/skew exercises identical code paths; DESIGN.md §4
records this substitution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.graphs.generators import (
    barabasi_albert_graph,
    chung_lu_graph,
    power_law_degrees,
    rmat_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.sampling import random_node_sample
from repro.utils.rng import SeedLike, ensure_rng, spawn_rngs

__all__ = [
    "DATASETS",
    "SCALE_PROFILES",
    "DatasetSpec",
    "load_dataset",
    "load_dataset_pair",
]

# Profile -> fraction of nodes relative to the 'tiny' baseline sizes below.
SCALE_PROFILES = ("tiny", "small", "medium", "paper")


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one paper dataset and its simulator.

    Attributes
    ----------
    key:
        Short name used in the paper's figures (HP, EE, WT, UK, IT).
    description:
        The original dataset the simulation stands in for.
    paper_nodes / paper_edges:
        Sizes published in the paper's dataset table.
    family:
        Generator family used by the simulator ("ba", "chung-lu", "rmat").
    profile_nodes:
        Mapping of scale profile to simulated node count.
    """

    key: str
    description: str
    paper_nodes: int
    paper_edges: int
    family: str
    profile_nodes: dict[str, int]

    @property
    def edge_ratio(self) -> float:
        """The published m/n ratio the simulator targets."""
        return self.paper_edges / self.paper_nodes

    def nodes_for(self, scale: str) -> int:
        """Simulated node count for ``scale`` (KeyError on unknown scale)."""
        if scale not in self.profile_nodes:
            raise KeyError(
                f"unknown scale {scale!r}; choose from {sorted(self.profile_nodes)}"
            )
        return self.profile_nodes[scale]

    def sample_size_for(self, scale: str) -> int:
        """Default ``|V_B|`` at ``scale``.

        The paper fixes ``|V_B| = 10,000`` for *every* dataset; the scaled
        profiles keep that fixed-size protocol (clamped to the graph size)
        so that, as in the paper, ``n_A * n_B`` grows with the dataset and
        the dense baselines hit the memory wall on the larger ones.
        """
        target = _SAMPLE_TARGETS[_require_scale(scale)]
        return min(target, self.nodes_for(scale))


# Fixed |V_B| per profile, mirroring the paper's constant 10,000.
_SAMPLE_TARGETS = {"tiny": 100, "small": 1_000, "medium": 4_000, "paper": 10_000}


def _require_scale(scale: str) -> str:
    if scale not in SCALE_PROFILES:
        raise KeyError(f"unknown scale {scale!r}; choose from {SCALE_PROFILES}")
    return scale


def _make_profiles(tiny: int, small: int, medium: int, paper: int) -> dict[str, int]:
    return {"tiny": tiny, "small": small, "medium": medium, "paper": paper}


DATASETS: dict[str, DatasetSpec] = {
    "HP": DatasetSpec(
        key="HP",
        description="ego-Facebook social friendship graph (SNAP)",
        paper_nodes=34_546,
        paper_edges=421_578,
        family="ba",
        profile_nodes=_make_profiles(300, 3_000, 12_000, 34_546),
    ),
    "EE": DatasetSpec(
        key="EE",
        description="EU research institution email network (SNAP)",
        paper_nodes=265_214,
        paper_edges=420_045,
        family="chung-lu",
        profile_nodes=_make_profiles(800, 8_000, 40_000, 265_214),
    ),
    "WT": DatasetSpec(
        key="WT",
        description="Wikipedia talk (communication) graph (SNAP)",
        paper_nodes=2_394_385,
        paper_edges=5_021_410,
        family="chung-lu",
        profile_nodes=_make_profiles(1_500, 15_000, 80_000, 2_394_385),
    ),
    "UK": DatasetSpec(
        key="UK",
        description="2002 web crawl of the .uk domain (LAW)",
        paper_nodes=18_520_486,
        paper_edges=298_113_762,
        family="rmat",
        profile_nodes=_make_profiles(2_048, 16_384, 131_072, 18_520_486),
    ),
    "IT": DatasetSpec(
        key="IT",
        description="2004 web crawl of the .it domain (LAW)",
        paper_nodes=41_291_594,
        paper_edges=1_150_725_436,
        family="rmat",
        profile_nodes=_make_profiles(4_096, 32_768, 262_144, 41_291_594),
    ),
}

# Generator dispatch table: family -> builder(nodes, edge_ratio, rng) -> Graph.
_BUILDERS: dict[str, Callable[[int, float, object], Graph]] = {}


def _register(family: str) -> Callable:
    def decorator(func: Callable) -> Callable:
        _BUILDERS[family] = func
        return func

    return decorator


@_register("ba")
def _build_ba(nodes: int, edge_ratio: float, rng: object) -> Graph:
    per_node = max(1, min(nodes - 1, int(round(edge_ratio))))
    return barabasi_albert_graph(nodes, per_node, seed=rng)


@_register("chung-lu")
def _build_chung_lu(nodes: int, edge_ratio: float, rng: object) -> Graph:
    degree_rng, edge_rng = spawn_rngs(rng, 2)  # type: ignore[arg-type]
    # Communication graphs are highly skewed: exponent ~2.1.
    degrees = power_law_degrees(nodes, edge_ratio, exponent=2.1, seed=degree_rng)
    return chung_lu_graph(degrees, seed=edge_rng)


@_register("rmat")
def _build_rmat(nodes: int, edge_ratio: float, rng: object) -> Graph:
    scale = max(1, int(math.ceil(math.log2(nodes))))
    target_edges = int(round(edge_ratio * (1 << scale)))
    return rmat_graph(scale, target_edges, seed=rng)


def load_dataset(name: str, scale: str = "small", seed: SeedLike = 0) -> Graph:
    """Generate the simulated stand-in for dataset ``name`` at ``scale``.

    Parameters
    ----------
    name:
        One of ``HP``, ``EE``, ``WT``, ``UK``, ``IT`` (case-insensitive).
    scale:
        A profile from :data:`SCALE_PROFILES`.  The ``paper`` profile targets
        the published sizes and is not runnable on laptop-class hardware;
        it exists so the registry documents the real experiment faithfully.
    seed:
        Seed for deterministic generation.

    Returns
    -------
    Graph
        The simulated ``G_A``, named ``"<KEY>-<scale>"``.
    """
    key = name.upper()
    if key not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; choose from {sorted(DATASETS)}")
    spec = DATASETS[key]
    nodes = spec.nodes_for(scale)
    rng = ensure_rng(seed)
    graph = _BUILDERS[spec.family](nodes, spec.edge_ratio, rng)
    return Graph(graph.adjacency, name=f"{key}-{scale}")


def load_dataset_pair(
    name: str,
    scale: str = "small",
    seed: SeedLike = 0,
    sample_size: int | None = None,
) -> tuple[Graph, Graph]:
    """Generate ``(G_A, G_B)`` for a dataset following the paper's protocol.

    ``G_B`` is a uniformly sampled node-induced subgraph of ``G_A`` (the
    paper samples ``|V_B| = 10,000`` nodes; at reduced scale the default
    size comes from :meth:`DatasetSpec.sample_size_for`).
    """
    key = name.upper()
    if key not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; choose from {sorted(DATASETS)}")
    spec = DATASETS[key]
    graph_rng, sample_rng = spawn_rngs(seed, 2)
    graph_a = load_dataset(key, scale=scale, seed=graph_rng)
    size = sample_size if sample_size is not None else spec.sample_size_for(scale)
    graph_b = random_node_sample(graph_a, size, seed=sample_rng)
    return graph_a, Graph(graph_b.adjacency, name=f"{key}-{scale}-B{size}")
