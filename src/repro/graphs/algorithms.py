"""Classic graph algorithms the substrate and examples rely on.

Pure-Python/NumPy implementations over :class:`repro.graphs.Graph` —
weak/strong connectivity, component extraction, and degree statistics.
The samplers use connectivity to pick meaningful ``G_B`` regions, and the
dataset registry's documentation quotes the statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph

__all__ = [
    "DegreeStatistics",
    "degree_statistics",
    "largest_weakly_connected_subgraph",
    "strongly_connected_components",
    "weakly_connected_components",
]


def weakly_connected_components(graph: Graph) -> list[np.ndarray]:
    """Node sets of the weakly connected components, largest first.

    Iterative BFS over the symmetrised adjacency; ties between equal-size
    components break by smallest contained node id for determinism.
    """
    n = graph.num_nodes
    seen = np.zeros(n, dtype=bool)
    components: list[np.ndarray] = []
    for root in range(n):
        if seen[root]:
            continue
        seen[root] = True
        frontier = [root]
        members = [root]
        while frontier:
            node = frontier.pop()
            for neighbour in graph.neighbors(node):
                if not seen[neighbour]:
                    seen[neighbour] = True
                    frontier.append(int(neighbour))
                    members.append(int(neighbour))
        components.append(np.array(sorted(members), dtype=np.int64))
    components.sort(key=lambda c: (-c.size, int(c[0]) if c.size else 0))
    return components


def strongly_connected_components(graph: Graph) -> list[np.ndarray]:
    """Node sets of the strongly connected components, largest first.

    Iterative Tarjan (explicit stack, no recursion) so web-scale chains do
    not hit Python's recursion limit.
    """
    n = graph.num_nodes
    index_counter = 0
    indices = np.full(n, -1, dtype=np.int64)
    lowlinks = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    stack: list[int] = []
    components: list[np.ndarray] = []

    for root in range(n):
        if indices[root] != -1:
            continue
        # Each work item is (node, iterator position over successors).
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            node, child_position = work.pop()
            if child_position == 0:
                indices[node] = index_counter
                lowlinks[node] = index_counter
                index_counter += 1
                stack.append(node)
                on_stack[node] = True
            successors = graph.successors(node)
            recursed = False
            for position in range(child_position, len(successors)):
                child = int(successors[position])
                if indices[child] == -1:
                    work.append((node, position + 1))
                    work.append((child, 0))
                    recursed = True
                    break
                if on_stack[child]:
                    lowlinks[node] = min(lowlinks[node], indices[child])
            if recursed:
                continue
            if lowlinks[node] == indices[node]:
                members = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    members.append(member)
                    if member == node:
                        break
                components.append(np.array(sorted(members), dtype=np.int64))
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
    components.sort(key=lambda c: (-c.size, int(c[0]) if c.size else 0))
    return components


def largest_weakly_connected_subgraph(graph: Graph) -> Graph:
    """The induced subgraph on the largest weakly connected component."""
    components = weakly_connected_components(graph)
    if not components:
        return graph
    return graph.subgraph(components[0], name=f"{graph.name}-wcc")


@dataclass(frozen=True)
class DegreeStatistics:
    """Summary of a graph's degree distribution."""

    mean: float
    median: float
    maximum: int
    gini: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"mean={self.mean:.2f} median={self.median:.1f} "
            f"max={self.maximum} gini={self.gini:.3f}"
        )


def degree_statistics(graph: Graph) -> DegreeStatistics:
    """Mean/median/max total degree plus the Gini coefficient of skew.

    Gini near 0 means egalitarian degrees (ER-like); web crawls and social
    graphs sit well above 0.5.
    """
    if graph.num_nodes == 0:
        return DegreeStatistics(mean=0.0, median=0.0, maximum=0, gini=0.0)
    degrees = (graph.out_degrees() + graph.in_degrees()).astype(np.float64)
    total = degrees.sum()
    if total == 0:
        gini = 0.0
    else:
        ordered = np.sort(degrees)
        n = ordered.size
        ranks = np.arange(1, n + 1)
        gini = float((2 * ranks - n - 1) @ ordered / (n * total))
    return DegreeStatistics(
        mean=float(degrees.mean()),
        median=float(np.median(degrees)),
        maximum=int(degrees.max()),
        gini=gini,
    )
