"""Seeded synthetic graph generators.

These provide the scaled-down stand-ins for the paper's real datasets (see
``repro.graphs.datasets``).  All generators return directed
:class:`repro.graphs.Graph` instances and are deterministic given a seed.

* :func:`erdos_renyi_graph` — G(n, m) uniform random edges.
* :func:`barabasi_albert_graph` — preferential attachment (heavy-tailed
  in-degrees, like social graphs such as ego-Facebook).
* :func:`rmat_graph` — recursive-matrix generator; with the classic
  (0.57, 0.19, 0.19, 0.05) quadrant split it mimics web crawls such as
  uk-2002 / it-2004.
* :func:`chung_lu_graph` — expected-degree model fitting an arbitrary
  power-law exponent (used for email/communication graph stand-ins).
* :func:`stochastic_block_graph` — planted communities, used by the
  social-media-alignment example.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import (
    check_nonnegative_integer,
    check_positive_integer,
    check_probability,
)

__all__ = [
    "barabasi_albert_graph",
    "chung_lu_graph",
    "directed_block_graph",
    "erdos_renyi_graph",
    "rmat_graph",
    "stochastic_block_graph",
]


def _dedupe_edges(
    rows: np.ndarray, cols: np.ndarray, num_nodes: int, drop_self_loops: bool
) -> tuple[np.ndarray, np.ndarray]:
    """Remove duplicate directed edges (and optionally self loops)."""
    if drop_self_loops:
        keep = rows != cols
        rows, cols = rows[keep], cols[keep]
    # Encode each edge as a single int64 key for fast unique().
    keys = rows.astype(np.int64) * np.int64(num_nodes) + cols.astype(np.int64)
    keys = np.unique(keys)
    return keys // num_nodes, keys % num_nodes


def erdos_renyi_graph(
    num_nodes: int,
    num_edges: int,
    seed: SeedLike = None,
    allow_self_loops: bool = False,
    name: str = "erdos-renyi",
) -> Graph:
    """Directed G(n, m): ``num_edges`` distinct uniform random edges.

    Raises ``ValueError`` if more edges are requested than distinct pairs
    exist.
    """
    num_nodes = check_positive_integer(num_nodes, "num_nodes")
    num_edges = check_nonnegative_integer(num_edges, "num_edges")
    capacity = num_nodes * num_nodes - (0 if allow_self_loops else num_nodes)
    if num_edges > capacity:
        raise ValueError(
            f"cannot place {num_edges} distinct edges in a graph with capacity {capacity}"
        )
    rng = ensure_rng(seed)
    rows = np.empty(0, dtype=np.int64)
    cols = np.empty(0, dtype=np.int64)
    # Rejection-sample in batches until enough distinct edges accumulate.
    while rows.size < num_edges:
        deficit = num_edges - rows.size
        batch = max(64, int(deficit * 1.3))
        new_rows = rng.integers(0, num_nodes, size=batch)
        new_cols = rng.integers(0, num_nodes, size=batch)
        rows = np.concatenate([rows, new_rows])
        cols = np.concatenate([cols, new_cols])
        rows, cols = _dedupe_edges(rows, cols, num_nodes, not allow_self_loops)
    if rows.size > num_edges:
        # unique() sorted the edges, so subsample uniformly to hit the target.
        pick = rng.choice(rows.size, size=num_edges, replace=False)
        rows, cols = rows[pick], cols[pick]
    return Graph.from_edges(num_nodes, zip(rows.tolist(), cols.tolist()), name=name)


def barabasi_albert_graph(
    num_nodes: int,
    edges_per_node: int,
    seed: SeedLike = None,
    name: str = "barabasi-albert",
) -> Graph:
    """Directed preferential-attachment graph.

    Each arriving node points ``edges_per_node`` directed edges at existing
    nodes chosen proportionally to their current total degree, yielding the
    heavy-tailed degree distribution typical of social graphs.
    """
    num_nodes = check_positive_integer(num_nodes, "num_nodes")
    edges_per_node = check_positive_integer(edges_per_node, "edges_per_node")
    if edges_per_node >= num_nodes:
        raise ValueError(
            f"edges_per_node ({edges_per_node}) must be < num_nodes ({num_nodes})"
        )
    rng = ensure_rng(seed)
    # repeated_targets holds one entry per degree unit; attachment picks
    # uniformly from it, which is exactly degree-proportional sampling.
    repeated_targets: list[int] = list(range(edges_per_node))
    sources: list[int] = []
    targets: list[int] = []
    for node in range(edges_per_node, num_nodes):
        pool = np.asarray(repeated_targets, dtype=np.int64)
        chosen: set[int] = set()
        while len(chosen) < edges_per_node:
            picks = rng.choice(pool, size=edges_per_node - len(chosen))
            chosen.update(int(p) for p in picks)
        for dst in chosen:
            sources.append(node)
            targets.append(dst)
            repeated_targets.append(dst)
        repeated_targets.extend([node] * edges_per_node)
    return Graph.from_edges(num_nodes, zip(sources, targets), name=name)


def rmat_graph(
    scale: int,
    num_edges: int,
    seed: SeedLike = None,
    quadrants: tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05),
    name: str = "rmat",
) -> Graph:
    """R-MAT recursive matrix graph with ``2**scale`` nodes.

    The adjacency matrix is built by recursively descending into one of four
    quadrants with probabilities ``(a, b, c, d)``; skewed splits produce the
    scale-free, community-rich structure of web crawls.  Duplicate edges are
    merged, so the realised edge count can be slightly below ``num_edges``.
    """
    scale = check_positive_integer(scale, "scale")
    num_edges = check_nonnegative_integer(num_edges, "num_edges")
    a, b, c, d = (check_probability(q, "quadrant weight") for q in quadrants)
    total = a + b + c + d
    if not np.isclose(total, 1.0):
        raise ValueError(f"quadrant weights must sum to 1, got {total}")
    rng = ensure_rng(seed)
    num_nodes = 1 << scale
    thresholds = np.cumsum([a, b, c])

    def _draw(count: int) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised descent: at each level pick a quadrant per edge."""
        batch_rows = np.zeros(count, dtype=np.int64)
        batch_cols = np.zeros(count, dtype=np.int64)
        for level in range(scale):
            bit = np.int64(1) << (scale - 1 - level)
            draws = rng.random(count)
            right = (draws >= thresholds[0]) & (draws < thresholds[1])
            down = (draws >= thresholds[1]) & (draws < thresholds[2])
            diag = draws >= thresholds[2]
            batch_cols[right | diag] += bit
            batch_rows[down | diag] += bit
        return batch_rows, batch_cols

    rows = np.empty(0, dtype=np.int64)
    cols = np.empty(0, dtype=np.int64)
    # The skewed quadrant split lands many edges on the same hot cells, so
    # duplicates are common; top up in a few rounds (the exact target may be
    # unreachable once the hot quadrant saturates).
    for _ in range(8):
        deficit = num_edges - rows.size
        if deficit <= 0:
            break
        new_rows, new_cols = _draw(int(deficit * 1.4) + 8)
        rows = np.concatenate([rows, new_rows])
        cols = np.concatenate([cols, new_cols])
        rows, cols = _dedupe_edges(rows, cols, num_nodes, drop_self_loops=True)
    if rows.size > num_edges:
        pick = rng.choice(rows.size, size=num_edges, replace=False)
        rows, cols = rows[pick], cols[pick]
    return Graph.from_edges(num_nodes, zip(rows.tolist(), cols.tolist()), name=name)


def chung_lu_graph(
    degrees: np.ndarray | list[int],
    seed: SeedLike = None,
    name: str = "chung-lu",
) -> Graph:
    """Directed Chung-Lu expected-degree graph.

    Edge ``i -> j`` appears with probability proportional to
    ``degrees[i] * degrees[j]``, capped at 1.  Sampling uses the efficient
    per-endpoint method: both endpoints of each of ``sum(degrees)`` candidate
    edges are drawn degree-proportionally, then duplicates are removed.
    """
    weights = np.asarray(degrees, dtype=np.float64)
    if weights.ndim != 1 or weights.size == 0:
        raise ValueError("degrees must be a non-empty 1-D sequence")
    if (weights < 0).any():
        raise ValueError("degrees must be non-negative")
    total = weights.sum()
    if total <= 0:
        return Graph.empty(weights.size, name=name)
    rng = ensure_rng(seed)
    num_nodes = weights.size
    target_edges = int(round(total))
    probabilities = weights / total
    rows = np.empty(0, dtype=np.int64)
    cols = np.empty(0, dtype=np.int64)
    # Heavy-tailed weights concentrate draws on hubs, so duplicates are
    # frequent; re-draw in batches until the realised edge count reaches
    # the expected total (bounded rounds: hub-hub saturation can make the
    # exact target unreachable).
    for _ in range(12):
        deficit = target_edges - rows.size
        if deficit <= 0:
            break
        new_rows = rng.choice(num_nodes, size=2 * deficit, p=probabilities)
        new_cols = rng.choice(num_nodes, size=2 * deficit, p=probabilities)
        rows = np.concatenate([rows, new_rows])
        cols = np.concatenate([cols, new_cols])
        rows, cols = _dedupe_edges(rows, cols, num_nodes, drop_self_loops=True)
    if rows.size > target_edges:
        pick = rng.choice(rows.size, size=target_edges, replace=False)
        rows, cols = rows[pick], cols[pick]
    return Graph.from_edges(num_nodes, zip(rows.tolist(), cols.tolist()), name=name)


def power_law_degrees(
    num_nodes: int,
    average_degree: float,
    exponent: float = 2.5,
    seed: SeedLike = None,
) -> np.ndarray:
    """Draw a power-law degree sequence rescaled to a target average degree.

    Helper for :func:`chung_lu_graph`; exposed because the dataset registry
    and tests use it directly.
    """
    num_nodes = check_positive_integer(num_nodes, "num_nodes")
    if average_degree <= 0:
        raise ValueError(f"average_degree must be positive, got {average_degree}")
    if exponent <= 1.0:
        raise ValueError(f"exponent must be > 1, got {exponent}")
    rng = ensure_rng(seed)
    # Inverse-CDF sampling of a Pareto tail starting at 1.
    uniforms = rng.random(num_nodes)
    raw = (1.0 - uniforms) ** (-1.0 / (exponent - 1.0))
    return raw * (average_degree / raw.mean())


def stochastic_block_graph(
    block_sizes: list[int],
    p_in: float | list[float],
    p_out: float,
    seed: SeedLike = None,
    name: str = "sbm",
) -> Graph:
    """Directed stochastic block model with planted communities.

    Edge ``i -> j`` exists with probability ``p_in`` when the endpoints
    share a block and ``p_out`` otherwise.  ``p_in`` may be a single
    probability or one per block, letting communities differ in density
    (useful when the communities' *roles* should be distinguishable, as in
    the social-media-alignment example).  Self loops are excluded.
    """
    if not block_sizes:
        raise ValueError("block_sizes must be non-empty")
    sizes = [check_positive_integer(s, "block size") for s in block_sizes]
    if isinstance(p_in, (list, tuple)):
        if len(p_in) != len(sizes):
            raise ValueError(
                f"p_in has {len(p_in)} entries for {len(sizes)} blocks"
            )
        p_in_per_block = [check_probability(p, "p_in") for p in p_in]
    else:
        p_in_per_block = [check_probability(p_in, "p_in")] * len(sizes)
    p_out = check_probability(p_out, "p_out")
    rng = ensure_rng(seed)
    num_nodes = sum(sizes)
    membership = np.repeat(np.arange(len(sizes)), sizes)
    same_block = membership[:, None] == membership[None, :]
    in_probability = np.asarray(p_in_per_block)[membership][:, None]
    prob = np.where(same_block, in_probability, p_out)
    np.fill_diagonal(prob, 0.0)
    mask = rng.random((num_nodes, num_nodes)) < prob
    rows, cols = np.nonzero(mask)
    return Graph.from_edges(num_nodes, zip(rows.tolist(), cols.tolist()), name=name)


def directed_block_graph(
    block_sizes: list[int],
    block_matrix: np.ndarray | list[list[float]],
    seed: SeedLike = None,
    name: str = "directed-sbm",
) -> Graph:
    """Directed block model with an arbitrary block-to-block edge matrix.

    ``block_matrix[r][c]`` is the probability of an edge from a node in
    block ``r`` to a node in block ``c``.  Unlike
    :func:`stochastic_block_graph`, the matrix need not be symmetric, so
    blocks can play *directional* roles (broadcasters, receivers, mixers) —
    the structure GSim's ``A``/``A^T`` recursion distinguishes and the
    social-media-alignment example relies on.  Self loops are excluded.
    """
    if not block_sizes:
        raise ValueError("block_sizes must be non-empty")
    sizes = [check_positive_integer(s, "block size") for s in block_sizes]
    matrix = np.asarray(block_matrix, dtype=np.float64)
    if matrix.shape != (len(sizes), len(sizes)):
        raise ValueError(
            f"block_matrix must be {len(sizes)}x{len(sizes)}, got {matrix.shape}"
        )
    if (matrix < 0).any() or (matrix > 1).any():
        raise ValueError("block_matrix entries must be probabilities in [0, 1]")
    rng = ensure_rng(seed)
    num_nodes = sum(sizes)
    membership = np.repeat(np.arange(len(sizes)), sizes)
    prob = matrix[membership][:, membership]
    np.fill_diagonal(prob, 0.0)
    mask = rng.random((num_nodes, num_nodes)) < prob
    rows, cols = np.nonzero(mask)
    return Graph.from_edges(num_nodes, zip(rows.tolist(), cols.tolist()), name=name)
