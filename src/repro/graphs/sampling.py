"""Subgraph sampling strategies.

The paper constructs each ``G_B`` as a sampled subgraph of ``G_A`` with
``|V_B| = 10,000``.  This module provides the samplers used for that
construction plus alternatives for the examples and ablations.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive_integer

__all__ = ["bfs_sample", "forest_fire_sample", "random_node_sample"]


def _validate_size(graph: Graph, size: int) -> int:
    size = check_positive_integer(size, "size")
    if size > graph.num_nodes:
        raise ValueError(
            f"cannot sample {size} nodes from a graph with {graph.num_nodes} nodes"
        )
    return size


def random_node_sample(graph: Graph, size: int, seed: SeedLike = None) -> Graph:
    """Induced subgraph on ``size`` uniformly sampled nodes.

    This matches the paper's ``G_B`` construction: a node-induced sample of
    ``G_A`` relabelled to ``0..size-1``.
    """
    size = _validate_size(graph, size)
    rng = ensure_rng(seed)
    nodes = rng.choice(graph.num_nodes, size=size, replace=False)
    return graph.subgraph(np.sort(nodes), name=f"{graph.name}-rnd{size}")


def bfs_sample(
    graph: Graph, size: int, seed: SeedLike = None, start: int | None = None
) -> Graph:
    """Breadth-first sample: the first ``size`` nodes reached from ``start``.

    Traversal follows both edge directions so weakly-connected regions are
    covered.  If the frontier empties before ``size`` nodes are found, a new
    random unvisited root is chosen (restart), so the request always
    succeeds.
    """
    size = _validate_size(graph, size)
    rng = ensure_rng(seed)
    visited: list[int] = []
    seen = np.zeros(graph.num_nodes, dtype=bool)
    frontier: list[int] = []

    def _push_root() -> None:
        remaining = np.flatnonzero(~seen)
        root = int(rng.choice(remaining))
        seen[root] = True
        frontier.append(root)

    if start is not None:
        if not (0 <= start < graph.num_nodes):
            raise ValueError(f"start node {start} out of range")
        seen[start] = True
        frontier.append(start)
    else:
        _push_root()

    while len(visited) < size:
        if not frontier:
            _push_root()
            continue
        node = frontier.pop(0)
        visited.append(node)
        if len(visited) == size:
            break
        for neighbour in graph.neighbors(node):
            if not seen[neighbour]:
                seen[neighbour] = True
                frontier.append(int(neighbour))
    return graph.subgraph(sorted(visited), name=f"{graph.name}-bfs{size}")


def forest_fire_sample(
    graph: Graph,
    size: int,
    seed: SeedLike = None,
    forward_probability: float = 0.7,
) -> Graph:
    """Forest-fire sample (Leskovec-style burning process).

    From each burning node, a geometrically distributed number of unvisited
    out-neighbours "catch fire".  Preserves community structure and degree
    skew better than uniform node sampling; offered for the ablation
    comparing `G_B` construction strategies.
    """
    size = _validate_size(graph, size)
    if not 0.0 < forward_probability < 1.0:
        raise ValueError(
            f"forward_probability must be in (0, 1), got {forward_probability}"
        )
    rng = ensure_rng(seed)
    seen = np.zeros(graph.num_nodes, dtype=bool)
    burned: list[int] = []
    queue: list[int] = []

    while len(burned) < size:
        if not queue:
            remaining = np.flatnonzero(~seen)
            root = int(rng.choice(remaining))
            seen[root] = True
            queue.append(root)
        node = queue.pop(0)
        burned.append(node)
        if len(burned) == size:
            break
        candidates = [int(v) for v in graph.successors(node) if not seen[v]]
        if not candidates:
            continue
        # Geometric(1 - p) burst size, capped by available neighbours.
        burst = min(rng.geometric(1.0 - forward_probability), len(candidates))
        for neighbour in rng.choice(candidates, size=burst, replace=False):
            seen[neighbour] = True
            queue.append(int(neighbour))
    return graph.subgraph(sorted(burned), name=f"{graph.name}-ff{size}")
