"""NetworkX interoperability.

Most Python graph pipelines speak NetworkX; these converters move graphs
between ``networkx.DiGraph`` and :class:`repro.graphs.Graph` without
losing weights.  NetworkX is an *optional* dependency: importing this
module without it installed raises a clear error at call time, not at
package import.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable

from repro.graphs.graph import Graph

if TYPE_CHECKING:  # pragma: no cover - typing only
    import networkx

__all__ = ["from_networkx", "to_networkx"]


def _require_networkx():
    try:
        import networkx
    except ImportError as exc:  # pragma: no cover - env without networkx
        raise ImportError(
            "networkx is required for graph interop; pip install networkx"
        ) from exc
    return networkx


def from_networkx(
    nx_graph: "networkx.Graph",
    weight_attribute: str = "weight",
    name: str | None = None,
) -> tuple[Graph, dict[Hashable, int]]:
    """Convert a NetworkX (di)graph to a :class:`Graph`.

    Node labels may be arbitrary hashables; they are relabelled to
    ``0..n-1`` in NetworkX iteration order and the mapping is returned so
    results can be translated back.  Undirected inputs become symmetric
    directed graphs.  Edge weights are read from ``weight_attribute``
    (default 1.0 when absent).

    Returns
    -------
    (graph, labels)
        The converted graph and the ``original label -> node id`` mapping.
    """
    networkx = _require_networkx()
    labels = {node: index for index, node in enumerate(nx_graph.nodes())}
    edges: list[tuple[int, int, float]] = []
    for src, dst, data in nx_graph.edges(data=True):
        weight = float(data.get(weight_attribute, 1.0))
        edges.append((labels[src], labels[dst], weight))
        if not nx_graph.is_directed():
            edges.append((labels[dst], labels[src], weight))
    graph = Graph.from_edges(
        len(labels), edges, name=name or nx_graph.name or "networkx"
    )
    del networkx
    return graph, labels


def to_networkx(graph: Graph) -> "networkx.DiGraph":
    """Convert a :class:`Graph` to a ``networkx.DiGraph`` with weights."""
    networkx = _require_networkx()
    nx_graph = networkx.DiGraph(name=graph.name)
    nx_graph.add_nodes_from(range(graph.num_nodes))
    nx_graph.add_weighted_edges_from(graph.edges())
    return nx_graph
