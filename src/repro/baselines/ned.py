"""NED — Zhu et al.'s inter-graph node metric based on edit distance.

NED compares two nodes (possibly from different graphs) through their
*k-adjacent trees*: the tree rooted at the node whose children at every
level are the graph neighbours of the corresponding node.  Because parents
reappear as children, the number of tree nodes per level (the paper's
``L``) grows exponentially with ``k`` — the reason NED is reported
"unresponsive" on all but the smallest inputs.

The distance between two k-adjacent trees is computed bottom-up: the
distance at depth budget ``d`` between roots ``x`` and ``y`` is the cost of
an optimal assignment (Hungarian) between their child sets under the
depth-``d-1`` distances, where an unmatched child costs the size of its
entire remaining subtree (pure insertion/deletion).  Results are memoised
per ``(depth, x, y)``, which is what makes repeated queries affordable at
all.

``ned_distance`` is a *distance* (0 = structurally identical);
``ned_query`` converts to a similarity via ``1 / (1 + distance)`` so the
experiment harness can rank with the same polarity as the other models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.graphs.graph import Graph
from repro.runtime import ExecutionContext
from repro.utils.deadline import WallClockDeadline
from repro.utils.validation import check_nonnegative_integer

__all__ = ["NEDIndex", "TreeSizeLimitExceeded", "ned_distance", "ned_query"]


class TreeSizeLimitExceeded(RuntimeError):
    """Raised when a k-adjacent tree grows past the configured cap.

    Mirrors the paper's observation that NED fails to answer within a day
    once the trees explode; the experiment harness records this as a
    TIMEOUT-class outcome.
    """


@dataclass
class NEDIndex:
    """Per-graph helper caching neighbour lists and subtree sizes.

    Parameters
    ----------
    graph:
        The graph whose k-adjacent trees are compared.
    depth:
        Maximum tree depth ``k``.
    size_limit:
        Upper bound on any subtree's node count; exceeded =>
        :class:`TreeSizeLimitExceeded`.
    """

    graph: Graph
    depth: int
    size_limit: int = 2_000_000
    _neighbours: list[np.ndarray] = field(default_factory=list, repr=False)
    _sizes: dict[tuple[int, int], int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self.depth = check_nonnegative_integer(self.depth, "depth")
        undirected = self.graph.to_undirected()
        self._neighbours = [
            undirected.successors(node) for node in range(undirected.num_nodes)
        ]

    def neighbours(self, node: int) -> np.ndarray:
        """Graph neighbours of ``node`` (children at every tree level)."""
        return self._neighbours[node]

    def subtree_size(self, node: int, depth: int) -> int:
        """Node count of the depth-``depth`` adjacent tree rooted at ``node``.

        Memoised; raises :class:`TreeSizeLimitExceeded` past ``size_limit``
        (this is where the exponential blow-up with ``k`` shows up).
        """
        key = (depth, node)
        cached = self._sizes.get(key)
        if cached is not None:
            return cached
        if depth == 0:
            size = 1
        else:
            size = 1
            for child in self._neighbours[node]:
                size += self.subtree_size(int(child), depth - 1)
                if size > self.size_limit:
                    raise TreeSizeLimitExceeded(
                        f"k-adjacent tree at node {node} exceeds "
                        f"{self.size_limit} nodes at depth {depth}"
                    )
        self._sizes[key] = size
        return size


def _pairwise_distance(
    index_a: NEDIndex,
    index_b: NEDIndex,
    node_a: int,
    node_b: int,
    depth: int,
    memo: dict[tuple[int, int, int], float],
    deadline: WallClockDeadline | None = None,
    context: ExecutionContext | None = None,
) -> float:
    """Tree edit distance between depth-limited adjacent trees (memoised)."""
    if depth == 0:
        return 0.0
    key = (depth, node_a, node_b)
    cached = memo.get(key)
    if cached is not None:
        if context is not None:
            context.metrics.increment("ned.memo_hits")
        return cached
    # A single pair on a hubby graph can spend minutes inside this
    # recursion, so the deadline (and context) is checked per uncached
    # subproblem, not just between query pairs.
    if context is not None:
        context.checkpoint("NED subtree matching")
        context.metrics.increment("ned.subproblems")
    if deadline is not None:
        deadline.check("NED subtree matching")
    children_a = index_a.neighbours(node_a)
    children_b = index_b.neighbours(node_b)
    na, nb = len(children_a), len(children_b)
    if na == 0 and nb == 0:
        memo[key] = 0.0
        return 0.0
    # Deletion/insertion cost of a child = its whole remaining subtree.
    delete_costs = [
        float(index_a.subtree_size(int(c), depth - 1)) for c in children_a
    ]
    insert_costs = [
        float(index_b.subtree_size(int(c), depth - 1)) for c in children_b
    ]
    if na == 0:
        value = float(sum(insert_costs))
        memo[key] = value
        return value
    if nb == 0:
        value = float(sum(delete_costs))
        memo[key] = value
        return value
    # Square the cost matrix with dummy rows/columns carrying ins/del costs,
    # then solve the optimal assignment.
    size = na + nb
    costs = np.zeros((size, size))
    for i, ca in enumerate(children_a):
        for j, cb in enumerate(children_b):
            costs[i, j] = _pairwise_distance(
                index_a, index_b, int(ca), int(cb), depth - 1, memo, deadline, context
            )
    # Matching child i of A with a dummy = deleting its subtree.
    costs[:na, nb:] = np.inf
    for i in range(na):
        costs[i, nb + i] = delete_costs[i]
    costs[na:, :nb] = np.inf
    for j in range(nb):
        costs[na + j, j] = insert_costs[j]
    costs[na:, nb:] = 0.0  # dummy-dummy pairs are free.
    row_idx, col_idx = linear_sum_assignment(costs)
    value = float(costs[row_idx, col_idx].sum())
    memo[key] = value
    return value


def ned_distance(
    graph_a: Graph,
    graph_b: Graph,
    node_a: int,
    node_b: int,
    depth: int = 3,
    size_limit: int = 2_000_000,
) -> float:
    """Single-pair NED distance between ``node_a`` in ``G_A`` and
    ``node_b`` in ``G_B`` using depth-``depth`` adjacent trees.

    Examples
    --------
    >>> from repro.graphs import Graph
    >>> a = Graph.from_edges(3, [(0, 1), (1, 2)])
    >>> ned_distance(a, a, 0, 0, depth=2)
    0.0
    """
    index_a = NEDIndex(graph_a, depth, size_limit=size_limit)
    index_b = NEDIndex(graph_b, depth, size_limit=size_limit)
    memo: dict[tuple[int, int, int], float] = {}
    return _pairwise_distance(index_a, index_b, node_a, node_b, depth, memo)


def ned_query(
    graph_a: Graph,
    graph_b: Graph,
    queries_a: np.ndarray | list[int],
    queries_b: np.ndarray | list[int],
    depth: int = 3,
    size_limit: int = 2_000_000,
    deadline: WallClockDeadline | None = None,
    context: ExecutionContext | None = None,
) -> np.ndarray:
    """NED similarity block ``1 / (1 + distance)`` over the query pairs.

    Each pair is a fresh single-pair computation (NED's design); the memo
    is shared across pairs so overlapping neighbourhoods are not re-solved.
    The optional ``deadline`` (or ``context``) is checked between pairs
    and per uncached subproblem.
    """
    rows = np.asarray(queries_a, dtype=np.int64)
    cols = np.asarray(queries_b, dtype=np.int64)
    index_a = NEDIndex(graph_a, depth, size_limit=size_limit)
    index_b = NEDIndex(graph_b, depth, size_limit=size_limit)
    memo: dict[tuple[int, int, int], float] = {}
    block = np.empty((rows.size, cols.size))
    for i, node_a in enumerate(rows):
        for j, node_b in enumerate(cols):
            if context is not None:
                context.checkpoint("NED pair queries")
            if deadline is not None:
                deadline.check("NED pair queries")
            distance = _pairwise_distance(
                index_a,
                index_b,
                int(node_a),
                int(node_b),
                depth,
                memo,
                deadline,
                context,
            )
            block[i, j] = 1.0 / (1.0 + distance)
            if context is not None:
                context.metrics.increment("ned.pairs")
    return block
