"""RoleSim (RSim) — Jin et al.'s axiomatic role similarity.

RoleSim is defined on a *single* graph; following the paper's experimental
setup, cross-graph queries are answered by running RoleSim on the disjoint
union ``G = G_A ∪ G_B`` and reading entries between the two node blocks.

The iteration over all node pairs ``(u, v)``::

    sim(u, v) = (1 - beta) * w(u, v) / max(d_u, d_v) + beta

where ``w(u, v)`` is the weight of a maximal matching between the
neighbour sets ``N(u)`` and ``N(v)`` under the previous iteration's
similarities, and ``beta`` is the decay factor.  All-pairs similarities
must be materialised every iteration — ``Θ((n_A + n_B)^2)`` memory — which
is why the paper reports RSim surviving only on its smallest dataset.

Two matching strategies are provided (ablation §5 of DESIGN.md):

* ``"greedy"`` — sort candidate pairs by weight, pick greedily; the
  ``O(d^2 log d)`` strategy RoleSim's authors use.
* ``"exact"`` — optimal assignment via the Hungarian algorithm
  (``scipy.optimize.linear_sum_assignment``); slower, slightly higher
  matching weights.

An *Iceberg* threshold is supported: pairs whose similarity falls below
``iceberg_threshold`` are clamped to ``beta`` and skipped in later
iterations (the IcebergRoleSim heuristic mentioned in Related Work).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.graphs.graph import Graph
from repro.runtime import ExecutionContext
from repro.utils.deadline import WallClockDeadline
from repro.utils.validation import (
    check_nonnegative_integer,
    check_probability,
    resolve_node_index,
)

__all__ = ["RoleSimResult", "rolesim", "rolesim_query"]

_MATCHING_STRATEGIES = ("greedy", "exact")


@dataclass
class RoleSimResult:
    """Output of a RoleSim run.

    Attributes
    ----------
    similarity:
        All-pairs ``n x n`` similarity over the (combined) graph.
    iterations:
        Iterations performed.
    """

    similarity: np.ndarray
    iterations: int


def _matching_weight_greedy(
    weights: np.ndarray,
) -> float:
    """Greedy maximal matching weight on a |N(u)| x |N(v)| weight matrix."""
    rows, cols = weights.shape
    if rows == 0 or cols == 0:
        return 0.0
    order = np.argsort(weights, axis=None)[::-1]
    used_rows = np.zeros(rows, dtype=bool)
    used_cols = np.zeros(cols, dtype=bool)
    total = 0.0
    matched = 0
    limit = min(rows, cols)
    for flat in order:
        i, j = divmod(int(flat), cols)
        if used_rows[i] or used_cols[j]:
            continue
        used_rows[i] = True
        used_cols[j] = True
        total += float(weights[i, j])
        matched += 1
        if matched == limit:
            break
    return total


def _matching_weight_exact(weights: np.ndarray) -> float:
    """Optimal assignment weight (maximisation) via the Hungarian method."""
    rows, cols = weights.shape
    if rows == 0 or cols == 0:
        return 0.0
    row_idx, col_idx = linear_sum_assignment(weights, maximize=True)
    return float(weights[row_idx, col_idx].sum())


def rolesim(
    graph: Graph,
    iterations: int = 5,
    beta: float = 0.15,
    matching: str = "greedy",
    iceberg_threshold: float | None = None,
    deadline: WallClockDeadline | None = None,
    context: ExecutionContext | None = None,
) -> RoleSimResult:
    """All-pairs RoleSim on one (undirected-ised) graph.

    Parameters
    ----------
    graph:
        Input graph; edges are symmetrised because RoleSim is defined on
        undirected neighbourhoods.
    beta:
        Decay factor in (0, 1); the RoleSim papers use 0.1-0.2.
    matching:
        ``"greedy"`` (default) or ``"exact"``.
    iceberg_threshold:
        If set, pairs below the threshold are frozen at ``beta`` after the
        first iteration (IcebergRoleSim pruning).

    Examples
    --------
    >>> from repro.graphs import Graph
    >>> g = Graph.from_edges(3, [(0, 1), (1, 2)])
    >>> out = rolesim(g, iterations=2)
    >>> out.similarity.shape
    (3, 3)
    """
    iterations = check_nonnegative_integer(iterations, "iterations")
    beta = check_probability(beta, "beta")
    if matching not in _MATCHING_STRATEGIES:
        raise ValueError(
            f"matching must be one of {_MATCHING_STRATEGIES}, got {matching!r}"
        )
    match_fn = (
        _matching_weight_greedy if matching == "greedy" else _matching_weight_exact
    )
    undirected = graph.to_undirected()
    n = undirected.num_nodes
    neighbours = [undirected.successors(node) for node in range(n)]
    degrees = np.array([len(nbrs) for nbrs in neighbours])

    similarity = np.ones((n, n))
    active = np.ones((n, n), dtype=bool)
    np.fill_diagonal(active, False)  # diagonal stays exactly 1.

    charged = 0
    if context is not None:
        # Working set: the current iterate plus its updated copy.
        charged = 2 * n * n * 8
        context.charge(charged, "RoleSim all-pairs matrices")
    try:
        for _ in range(iterations):
            updated = similarity.copy()
            for u in range(n):
                if u % 64 == 0:
                    if context is not None:
                        context.checkpoint("RoleSim pair updates")
                    if deadline is not None:
                        deadline.check("RoleSim pair updates")
                nbrs_u = neighbours[u]
                row_updates = 0
                for v in range(u + 1, n):
                    if not active[u, v]:
                        continue
                    nbrs_v = neighbours[v]
                    denom = max(degrees[u], degrees[v])
                    if denom == 0:
                        # Two isolated nodes play identical roles.
                        value = 1.0
                    else:
                        weights = similarity[np.ix_(nbrs_u, nbrs_v)]
                        value = (1.0 - beta) * match_fn(weights) / denom + beta
                    updated[u, v] = value
                    updated[v, u] = value
                    row_updates += 1
                if context is not None and row_updates:
                    context.metrics.increment("rolesim.pair_updates", row_updates)
            similarity = updated
            if context is not None:
                context.metrics.increment("rolesim.iterations")
            if iceberg_threshold is not None:
                below = similarity < iceberg_threshold
                below &= active
                similarity[below] = beta
                active[below] = False
    finally:
        if context is not None and charged:
            context.release(charged)
    np.fill_diagonal(similarity, 1.0)
    return RoleSimResult(similarity=similarity, iterations=iterations)


def rolesim_query(
    graph_a: Graph,
    graph_b: Graph,
    queries_a: np.ndarray | list[int],
    queries_b: np.ndarray | list[int],
    iterations: int = 5,
    beta: float = 0.15,
    matching: str = "greedy",
    deadline: WallClockDeadline | None = None,
    context: ExecutionContext | None = None,
) -> np.ndarray:
    """Cross-graph RoleSim block via the disjoint union ``G_A ∪ G_B``.

    Despite the query sets, the *all-pairs* matrix over the union must be
    iterated (RoleSim's recursion spans every pair), reproducing the
    memory wall the paper reports.
    """
    rows = resolve_node_index(
        queries_a, graph_a.num_nodes, "queries_a",
        allow_empty=True, allow_duplicates=True,
    )
    cols = resolve_node_index(
        queries_b, graph_b.num_nodes, "queries_b",
        allow_empty=True, allow_duplicates=True,
    ) + graph_a.num_nodes
    union = graph_a.union_disjoint(graph_b)
    result = rolesim(
        union,
        iterations=iterations,
        beta=beta,
        matching=matching,
        deadline=deadline,
        context=context,
    )
    return result.similarity[np.ix_(rows, cols)]
