"""GSim — Blondel et al.'s original power iteration (Eq. 2 of the paper).

This is the naive baseline: the full dense ``n_A x n_B`` similarity matrix
is updated each iteration via

    S_k = normalize(A S_{k-1} B^T + A^T S_{k-1} B),   S_0 = all-ones

costing ``O(m_A n_B + m_B n_A)`` time and ``Θ(n_A n_B)`` memory per
iteration.  Even with sparse adjacencies the iterate itself is dense, which
is exactly why the paper's experiments show GSim crashing on the larger
graphs.

:func:`gsim_partial` implements Eq.(5): even when only a
``|Q_A| x |Q_B|`` block is wanted, the *previous* full iterate must be kept
— the query sets only save work in the very last multiplication.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph
from repro.runtime import ExecutionContext
from repro.utils.deadline import WallClockDeadline
from repro.utils.memory import dense_matrix_bytes
from repro.utils.validation import check_nonnegative_integer

__all__ = ["GSimResult", "gsim", "gsim_partial"]


@dataclass
class GSimResult:
    """Output of a GSim run.

    Attributes
    ----------
    similarity:
        Normalised similarity matrix (full, or the query block for
        :func:`gsim_partial`).
    iterations:
        Number of iterations performed.
    iterates:
        Optional per-iteration full matrices (only when ``keep_history``).
    """

    similarity: np.ndarray
    iterations: int
    iterates: list[np.ndarray] | None = None


def _step(
    graph_a: Graph, graph_b: Graph, similarity: np.ndarray
) -> np.ndarray:
    """One unnormalised update ``A S B^T + A^T S B`` with sparse A, B."""
    a, a_t = graph_a.adjacency, graph_a.adjacency_t
    b, b_t = graph_b.adjacency, graph_b.adjacency_t
    # (A S) B^T: evaluate sparse-dense left products, then multiply by the
    # sparse transpose from the right via (B (A S)^T)^T to stay in
    # sparse-times-dense kernels throughout.
    left = a @ similarity
    right = a_t @ similarity
    return (b @ left.T).T + (b_t @ right.T).T


def _normalize(matrix: np.ndarray) -> np.ndarray:
    norm = float(np.linalg.norm(matrix))
    if norm == 0.0:
        raise ZeroDivisionError(
            "similarity iterate collapsed to zero (empty graph?)"
        )
    return matrix / norm


def gsim(
    graph_a: Graph,
    graph_b: Graph,
    iterations: int = 10,
    keep_history: bool = False,
    deadline: WallClockDeadline | None = None,
    initial: np.ndarray | None = None,
    context: ExecutionContext | None = None,
) -> GSimResult:
    """Blondel et al.'s GSim over the full node-pair space.

    Parameters
    ----------
    iterations:
        Number of power-iteration steps ``K``; even iterates converge to
        the fixed point.
    keep_history:
        Record every normalised iterate ``S_1 .. S_K`` (used by the
        accuracy experiment; memory-hungry).
    initial:
        Custom dense ``S_0`` (the content-based adaptation); defaults to
        the all-ones matrix of Eq.(2).

    Examples
    --------
    >>> from repro.graphs import Graph
    >>> a = Graph.from_edges(3, [(0, 1), (1, 2)])
    >>> b = Graph.from_edges(2, [(0, 1)])
    >>> gsim(a, b, iterations=4).similarity.shape
    (3, 2)
    """
    iterations = check_nonnegative_integer(iterations, "iterations")
    if initial is None:
        similarity = np.ones((graph_a.num_nodes, graph_b.num_nodes))
    else:
        similarity = np.asarray(initial, dtype=np.float64)
        if similarity.shape != (graph_a.num_nodes, graph_b.num_nodes):
            raise ValueError(
                f"initial S_0 must be {(graph_a.num_nodes, graph_b.num_nodes)}, "
                f"got {similarity.shape}"
            )
        similarity = similarity.copy()
    similarity = _normalize(similarity)
    history: list[np.ndarray] | None = [] if keep_history else None
    charged = 0
    if context is not None:
        # Working set per step: the iterate plus two same-sized temporaries
        # (matching the 3x factor of the predictive cost model).
        charged = 3 * dense_matrix_bytes(graph_a.num_nodes, graph_b.num_nodes)
        context.charge(charged, "GSim dense iterate")
    try:
        for k in range(iterations):
            if context is not None:
                context.checkpoint(f"GSim iteration {k + 1}")
            if deadline is not None:
                deadline.check("GSim iteration")
            similarity = _normalize(_step(graph_a, graph_b, similarity))
            if context is not None:
                context.metrics.increment("gsim.iterations")
                context.metrics.increment("gsim.spmm", 4)
            if history is not None:
                history.append(similarity.copy())
    finally:
        if context is not None and charged:
            context.release(charged)
    return GSimResult(similarity=similarity, iterations=iterations, iterates=history)


def gsim_partial(
    graph_a: Graph,
    graph_b: Graph,
    queries_a: np.ndarray | list[int],
    queries_b: np.ndarray | list[int],
    iterations: int = 10,
    deadline: WallClockDeadline | None = None,
    context: ExecutionContext | None = None,
) -> GSimResult:
    """Eq.(5): partial-pair GSim, normalised over the query block.

    The full ``S_{K-1}`` must still be iterated (the dependency structure
    in Eq.(5) spans all pairs); only the final multiplication is restricted
    to the query rows/columns.  This function exists to demonstrate that
    the naive scheme cannot exploit query locality — its cost matches
    :func:`gsim` asymptotically.
    """
    iterations = check_nonnegative_integer(iterations, "iterations")
    if iterations == 0:
        raise ValueError("gsim_partial needs at least one iteration")
    rows = np.asarray(queries_a, dtype=np.int64)
    cols = np.asarray(queries_b, dtype=np.int64)
    similarity = np.ones((graph_a.num_nodes, graph_b.num_nodes))
    similarity = _normalize(similarity)
    charged = 0
    if context is not None:
        charged = 3 * dense_matrix_bytes(graph_a.num_nodes, graph_b.num_nodes)
        context.charge(charged, "GSim dense iterate")
    try:
        # Iterate the full matrix K-1 times...
        for k in range(iterations - 1):
            if context is not None:
                context.checkpoint(f"GSim iteration {k + 1}")
            if deadline is not None:
                deadline.check("GSim iteration")
            similarity = _normalize(_step(graph_a, graph_b, similarity))
            if context is not None:
                context.metrics.increment("gsim.iterations")
                context.metrics.increment("gsim.spmm", 4)
        # ...then restrict the final update to the query rows/cols (Eq. 5).
        if context is not None:
            context.checkpoint("GSim partial final step")
            context.metrics.increment("gsim.iterations")
            context.metrics.increment("gsim.spmm", 4)
        a_rows = graph_a.adjacency[rows]
        a_t_rows = graph_a.adjacency_t[rows]
        b_cols = graph_b.adjacency[cols]
        b_t_cols = graph_b.adjacency_t[cols]
        block = (b_cols @ (a_rows @ similarity).T).T + (
            b_t_cols @ (a_t_rows @ similarity).T
        ).T
    finally:
        if context is not None and charged:
            context.release(charged)
    return GSimResult(similarity=_normalize(block), iterations=iterations)
