"""GSVD — Cason et al.'s fixed-rank low-rank approximation of GSim.

The iterate is approximated as a rank-``r`` SVD
``S_k ≈ U_k Σ_k V_k^T`` with orthonormal ``U_k (n_A x r)`` and
``V_k (n_B x r)``.  One iteration (Eqs. 3-4 of the paper):

1. Build the block matrices
   ``L = [A U Σ | A^T U Σ]`` (``n_A x 2r``) and ``R = [B V | B^T V]``
   (``n_B x 2r``).
2. QR-decompose both: ``L = Q_U R_U``, ``R = Q_V R_V``.
3. SVD of the small core ``R_U R_V^T`` (``2r x 2r``), truncated to rank r.
4. Rotate back: ``U' = Q_U Ũ_r``, ``V' = Q_V Ṽ_r``, ``Σ' = Σ̃_r``.

The QR steps (2) are the cost the paper criticises, and the fixed rank
``r`` is the source of the over/under-fitting the accuracy experiment
(§5.2.3) measures.  Σ is renormalised each iteration (``Σ / ||Σ||_2``),
which for orthonormal factors equals Frobenius normalisation of the
represented matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph
from repro.runtime import ExecutionContext
from repro.utils.validation import check_nonnegative_integer, check_positive_integer

__all__ = ["GSVDResult", "gsvd"]


@dataclass
class GSVDResult:
    """Output of a GSVD run.

    Attributes
    ----------
    u, sigma, v:
        The final rank-``r`` factors; the approximate similarity is
        ``u @ diag(sigma) @ v.T`` (already unit Frobenius norm).
    iterations:
        Iterations performed.
    rank:
        The fixed approximation rank ``r``.
    iterates:
        Optional list of per-iteration ``(u, sigma, v)`` triples.
    """

    u: np.ndarray
    sigma: np.ndarray
    v: np.ndarray
    iterations: int
    rank: int
    iterates: list[tuple[np.ndarray, np.ndarray, np.ndarray]] | None = None

    def similarity_matrix(self) -> np.ndarray:
        """Materialise the dense approximate ``S_K`` (``n_A x n_B``)."""
        return (self.u * self.sigma) @ self.v.T

    def query_block(
        self, queries_a: np.ndarray | list[int], queries_b: np.ndarray | list[int]
    ) -> np.ndarray:
        """Extract the ``|Q_A| x |Q_B|`` block of the approximation."""
        rows = np.asarray(queries_a, dtype=np.int64)
        cols = np.asarray(queries_b, dtype=np.int64)
        return (self.u[rows] * self.sigma) @ self.v[cols].T


def _initial_factors(
    n_a: int, n_b: int, rank: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Rank-r SVD of the all-ones S_0: dominant pair plus zero padding."""
    u = np.zeros((n_a, rank))
    v = np.zeros((n_b, rank))
    u[:, 0] = 1.0 / np.sqrt(n_a)
    v[:, 0] = 1.0 / np.sqrt(n_b)
    sigma = np.zeros(rank)
    sigma[0] = 1.0  # S_0 normalised: ||S_0||_F = 1 after scaling.
    return u, sigma, v


def gsvd(
    graph_a: Graph,
    graph_b: Graph,
    iterations: int = 10,
    rank: int = 10,
    keep_history: bool = False,
    context: ExecutionContext | None = None,
) -> GSVDResult:
    """Run Cason et al.'s fixed-rank GSVD iteration.

    Parameters
    ----------
    rank:
        The fixed approximation rank ``r`` (the paper evaluates
        r ∈ {5, 10, 50}).
    keep_history:
        Record per-iteration factors (for the accuracy table).

    Examples
    --------
    >>> from repro.graphs import Graph
    >>> a = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
    >>> b = Graph.from_edges(3, [(0, 1), (1, 2)])
    >>> result = gsvd(a, b, iterations=4, rank=2)
    >>> result.similarity_matrix().shape
    (4, 3)
    """
    iterations = check_nonnegative_integer(iterations, "iterations")
    rank = check_positive_integer(rank, "rank")
    n_a, n_b = graph_a.num_nodes, graph_b.num_nodes
    rank = min(rank, n_a, n_b)
    a, a_t = graph_a.adjacency, graph_a.adjacency_t
    b, b_t = graph_b.adjacency, graph_b.adjacency_t

    u, sigma, v = _initial_factors(n_a, n_b, rank)
    history: list[tuple[np.ndarray, np.ndarray, np.ndarray]] | None = (
        [] if keep_history else None
    )
    for step in range(iterations):
        if context is not None:
            context.checkpoint(f"GSVD iteration {step + 1}")
        scaled_u = u * sigma  # n_A x r, absorbs Σ as in Eq.(3).
        left_block = np.hstack([a @ scaled_u, a_t @ scaled_u])  # n_A x 2r
        right_block = np.hstack([b @ v, b_t @ v])  # n_B x 2r
        # Eq.(4): the costly dense QR decompositions.
        q_u, r_u = np.linalg.qr(left_block)
        q_v, r_v = np.linalg.qr(right_block)
        core = r_u @ r_v.T  # 2r x 2r
        core_u, core_sigma, core_vt = np.linalg.svd(core)
        keep = min(rank, core_sigma.size)
        u = q_u @ core_u[:, :keep]
        v = q_v @ core_vt[:keep].T
        sigma = core_sigma[:keep]
        # Pad back to the fixed rank if the core collapsed below it.
        if keep < rank:
            u = np.pad(u, ((0, 0), (0, rank - keep)))
            v = np.pad(v, ((0, 0), (0, rank - keep)))
            sigma = np.pad(sigma, (0, rank - keep))
        # Frobenius normalisation (orthonormal factors => ||S||_F = ||Σ||_2).
        norm = float(np.linalg.norm(sigma))
        if norm == 0.0:
            raise ZeroDivisionError("GSVD iterate collapsed to zero")
        sigma = sigma / norm
        if context is not None:
            context.metrics.increment("gsvd.iterations")
            context.metrics.increment("gsvd.spmm", 4)
            context.metrics.increment("gsvd.qr", 2)
        if history is not None:
            history.append((u.copy(), sigma.copy(), v.copy()))
    return GSVDResult(
        u=u, sigma=sigma, v=v, iterations=iterations, rank=rank, iterates=history
    )
