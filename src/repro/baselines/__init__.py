"""Baseline algorithms the paper compares GSim+ against.

Each baseline follows the interface conventions of the core solver: it
takes two :class:`repro.graphs.Graph` objects (or one, for the
single-graph role models) plus query sets, and returns a dense
``|Q_A| x |Q_B|`` similarity (or distance) block.

* :mod:`repro.baselines.gsim` — Blondel et al.'s original power iteration.
* :mod:`repro.baselines.gsvd` — Cason et al.'s fixed-rank SVD scheme.
* :mod:`repro.baselines.rolesim` — Jin et al.'s RoleSim on ``G_A ∪ G_B``.
* :mod:`repro.baselines.ned` — Zhu et al.'s k-adjacent-tree edit distance.
* :mod:`repro.baselines.structsim` — Chen et al.'s StructSim (SS-BC*).
"""

from repro.baselines.gsim import GSimResult, gsim, gsim_partial
from repro.baselines.gsvd import GSVDResult, gsvd
from repro.baselines.ned import NEDIndex, ned_distance, ned_query
from repro.baselines.rolesim import RoleSimResult, rolesim, rolesim_query
from repro.baselines.structsim import StructSimIndex, structsim_query

__all__ = [
    "GSVDResult",
    "GSimResult",
    "NEDIndex",
    "RoleSimResult",
    "StructSimIndex",
    "gsim",
    "gsim_partial",
    "gsvd",
    "ned_distance",
    "ned_query",
    "rolesim",
    "rolesim_query",
    "structsim_query",
]
