"""StructSim (SS-BC*) — Chen et al.'s hierarchical BinCount framework.

StructSim answers *single-pair* structural similarity queries from a
precomputed hierarchical index:

* **Index** — for every node and every level ``l = 0..K``, a *BinCount
  signature*: a histogram over logarithmic degree bins of the node's
  level-``l`` neighbourhood.  Level 0 is the node's own degree bin;
  level ``l`` aggregates the level-``l-1`` signatures of its neighbours
  (one sparse matrix product per level).  Index space is
  ``O(K (n_A + n_B) log D)`` — the ``log D`` factor is the bin count.
* **Query** — the BC* matching between nodes ``u`` and ``v`` at level
  ``l`` is the normalised bin-wise overlap
  ``sum_b min(sig_l(u)[b], sig_l(v)[b]) / max(|sig_l(u)|, |sig_l(v)|)``;
  the similarity averages the levels.  Each pair costs ``O(K log D)``.

For a ``|Q_A| x |Q_B|`` workload the single-pair query simply runs
``|Q_A| * |Q_B|`` times — the duplicate work across pairs is exactly the
inefficiency the paper's Figure 5 attributes to SS-BC*.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graphs.graph import Graph
from repro.runtime import ExecutionContext
from repro.utils.deadline import WallClockDeadline
from repro.utils.validation import check_nonnegative_integer

__all__ = ["StructSimIndex", "structsim_query"]


def _degree_bin(degree: int) -> int:
    """Logarithmic degree bin: 0 for isolated nodes, else 1+floor(log2 d)."""
    if degree <= 0:
        return 0
    return 1 + int(degree).bit_length() - 1


class StructSimIndex:
    """Hierarchical BinCount index over one graph.

    Parameters
    ----------
    graph:
        Indexed graph (symmetrised: StructSim uses undirected structure).
    levels:
        Number of hierarchy levels ``K`` (paper default 10 matches the
        iteration count of the other models).
    max_bins:
        Signature width; degrees above ``2**(max_bins-1)`` share the top
        bin.  ``log D`` in the complexity analysis.

    Examples
    --------
    >>> from repro.graphs import Graph
    >>> g = Graph.from_edges(3, [(0, 1), (1, 2)])
    >>> index = StructSimIndex(g, levels=2)
    >>> 0.0 <= index.pair_similarity(index, 0, 2) <= 1.0
    True
    """

    def __init__(self, graph: Graph, levels: int = 10, max_bins: int = 32) -> None:
        levels = check_nonnegative_integer(levels, "levels")
        if max_bins < 1:
            raise ValueError(f"max_bins must be >= 1, got {max_bins}")
        self.levels = levels
        self.max_bins = max_bins
        undirected = graph.to_undirected()
        n = undirected.num_nodes
        degrees = undirected.out_degrees()
        # Level-0 signature: one-hot of the node's own degree bin.
        bins = np.minimum(
            np.array([_degree_bin(int(d)) for d in degrees]), max_bins - 1
        )
        base = sp.csr_matrix(
            (np.ones(n), (np.arange(n), bins)), shape=(n, max_bins)
        )
        signatures = [np.asarray(base.todense())]
        adjacency = undirected.adjacency
        # Boolean propagation keeps counts = number of level-l walks;
        # stored dense because max_bins is tiny.
        for _ in range(levels):
            signatures.append(np.asarray(adjacency @ signatures[-1]))
        # (levels+1, n, max_bins) stack for O(1) per-pair access.
        self._signatures = np.stack(signatures)

    @property
    def num_nodes(self) -> int:
        """Number of indexed nodes."""
        return self._signatures.shape[1]

    def memory_bytes(self) -> int:
        """Bytes held by the signature stack."""
        return self._signatures.nbytes

    def signature(self, node: int, level: int) -> np.ndarray:
        """The level-``level`` BinCount signature of ``node``."""
        if not (0 <= node < self.num_nodes):
            raise IndexError(f"node {node} out of range")
        if not (0 <= level <= self.levels):
            raise IndexError(f"level {level} out of range (0..{self.levels})")
        return self._signatures[level, node]

    def pair_similarity(
        self, other: "StructSimIndex", node_self: int, node_other: int
    ) -> float:
        """BC* similarity between a node here and a node in ``other``.

        Averages the per-level normalised bin overlaps; both indexes must
        share ``levels`` and ``max_bins``.
        """
        if self.levels != other.levels or self.max_bins != other.max_bins:
            raise ValueError("indexes were built with different parameters")
        sig_u = self._signatures[:, node_self]  # (levels+1, bins)
        sig_v = other._signatures[:, node_other]
        overlap = np.minimum(sig_u, sig_v).sum(axis=1)
        larger = np.maximum(sig_u.sum(axis=1), sig_v.sum(axis=1))
        # Levels where both neighbourhoods are empty count as identical.
        with np.errstate(invalid="ignore", divide="ignore"):
            ratios = np.where(larger > 0, overlap / larger, 1.0)
        return float(ratios.mean())


def structsim_query(
    graph_a: Graph,
    graph_b: Graph,
    queries_a: np.ndarray | list[int],
    queries_b: np.ndarray | list[int],
    levels: int = 10,
    max_bins: int = 32,
    index_a: StructSimIndex | None = None,
    index_b: StructSimIndex | None = None,
    deadline: WallClockDeadline | None = None,
    context: ExecutionContext | None = None,
) -> np.ndarray:
    """SS-BC* similarity block: one single-pair query per ``(a, b)`` pair.

    Pre-built indexes may be passed to amortise construction across calls
    (the paper's SS-BC* also builds its index once); the query loop itself
    is intentionally pair-at-a-time, reproducing the repeated-execution
    behaviour the paper criticises.
    """
    rows = np.asarray(queries_a, dtype=np.int64)
    cols = np.asarray(queries_b, dtype=np.int64)
    if index_a is None:
        index_a = StructSimIndex(graph_a, levels=levels, max_bins=max_bins)
    if index_b is None:
        index_b = StructSimIndex(graph_b, levels=levels, max_bins=max_bins)
    block = np.empty((rows.size, cols.size))
    for i, node_a in enumerate(rows):
        if context is not None:
            context.checkpoint("SS-BC* pair queries")
        if deadline is not None:
            deadline.check("SS-BC* pair queries")
        for j, node_b in enumerate(cols):
            block[i, j] = index_a.pair_similarity(index_b, int(node_a), int(node_b))
        if context is not None:
            context.metrics.increment("structsim.pairs", cols.size)
    return block
