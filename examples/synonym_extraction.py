"""Synonym extraction — Blondel et al.'s original GSim application.

Blondel et al. (2004) extracted synonyms from a dictionary graph: nodes
are words, and an edge ``u -> v`` means the definition of ``u`` uses the
word ``v``.  A query word's neighbourhood graph is compared against the
whole dictionary: words playing the same *structural role* as the query
word relative to the small "structure graph" score highest.

Here ``G_B`` is the classic 3-node path ``0 -> 1 -> 2`` (the "central
vertex" structure Blondel et al. use): column 1 of the similarity matrix
then ranks every dictionary word by how much it behaves like the centre of
the query word's definition neighbourhood.

The toy dictionary below encodes two synonym clusters (big/large/huge and
small/tiny/little) plus connector words; the example checks that the
GSim-based ranking clusters the synonyms.

Run with::

    python examples/synonym_extraction.py
"""

import numpy as np

from repro import Graph, gsim_plus
from repro.graphs import read_edge_list_text

# A miniature dictionary: "word: words used in its definition".
_DICTIONARY = {
    "big": ["large", "size", "great"],
    "large": ["big", "size", "great"],
    "huge": ["big", "large", "very"],
    "great": ["big", "size"],
    "small": ["little", "size"],
    "little": ["small", "size"],
    "tiny": ["small", "little", "very"],
    "size": ["measure"],
    "very": ["degree"],
    "measure": ["size"],
    "degree": ["measure"],
}


def build_dictionary_graph() -> tuple[Graph, dict[str, int]]:
    """Encode the dictionary as a directed word graph."""
    words = sorted(_DICTIONARY)
    index = {word: i for i, word in enumerate(words)}
    lines = []
    for word, definition in _DICTIONARY.items():
        for used in definition:
            lines.append(f"{index[word]} {index[used]}")
    graph = read_edge_list_text("\n".join(lines), name="toy-dictionary")
    return graph, index


def neighbourhood_graph(graph: Graph, node: int) -> tuple[Graph, list[int]]:
    """The subgraph induced by ``node`` and its in/out neighbours."""
    nodes = sorted({node, *graph.neighbors(node).tolist()})
    return graph.subgraph(nodes), nodes


def main() -> None:
    dictionary, index = build_dictionary_graph()
    reverse = {i: w for w, i in index.items()}
    print(f"dictionary graph: {dictionary}")

    # Blondel et al.'s structure graph: 1 -> 2 -> 3, query the centre.
    structure = Graph.from_edges(3, [(0, 1), (1, 2)], name="path-structure")

    for query_word in ("big", "small"):
        # Compare the query word's neighbourhood graph against the path.
        neighbourhood, nodes = neighbourhood_graph(dictionary, index[query_word])
        similarity = gsim_plus(
            neighbourhood, structure, iterations=20, normalization="global"
        ).similarity
        # Column 1 = similarity to the path's centre vertex.
        centre_scores = similarity[:, 1]
        ranking = np.argsort(-centre_scores)
        ranked_words = [
            (reverse[nodes[i]], float(centre_scores[i]))
            for i in ranking
            if reverse[nodes[i]] != query_word
        ]
        print(f"\nsynonym candidates for {query_word!r}:")
        for word, score in ranked_words[:4]:
            print(f"  {word:<8} {score:.4f}")


if __name__ == "__main__":
    main()
