"""Social-media community alignment — the paper's motivating application.

The introduction's scenario: ``G_A`` is a Facebook-like graph, ``G_B`` a
Twitter-like graph, and GSim similarity search over query sets discovers
communities on one platform whose interaction patterns match communities
on the other (targeted advertising, content recommendation).

GSim's recursion mixes ``A`` and ``A^T``, so what it matches across graphs
is *directional* interaction roles.  Both platforms therefore get three
planted communities with distinct roles:

* **broadcasters** — post into the mixer community, receive little;
* **audience** — receive from the mixers, post little;
* **mixers** — densely interact among themselves and bridge the other two.

The communities have different sizes on each platform; GSim+ scores all
cross-platform user pairs and a per-community *lift* matrix (mean block
similarity normalised by row/column mass, so pure degree effects cancel)
recovers which community corresponds to which.

Run with::

    python examples/social_media_alignment.py
"""

import numpy as np

from repro import gsim_plus
from repro.graphs.generators import directed_block_graph

# Block-to-block edge probabilities: rows = source community.
# Order: broadcasters, audience, mixers.
ROLE_MATRIX = [
    [0.05, 0.00, 0.30],  # broadcasters post into the mixer core
    [0.00, 0.05, 0.00],  # the audience mostly lurks
    [0.00, 0.30, 0.20],  # mixers push content to the audience
]
ROLE_NAMES = ["broadcasters", "audience", "mixers"]


def community_blocks(sizes: list[int]) -> list[np.ndarray]:
    """Index arrays of each community given block sizes."""
    boundaries = np.cumsum([0] + sizes)
    return [np.arange(boundaries[i], boundaries[i + 1]) for i in range(len(sizes))]


def lift_matrix(similarity: np.ndarray, blocks_a, blocks_b) -> np.ndarray:
    """Mean block similarity normalised by row/column mass.

    GSim scores are dominated by overall activity (degree) profiles; the
    lift divides out that rank-1 mass so the directional-role signal shows.
    """
    means = np.array(
        [
            [similarity[np.ix_(block_a, block_b)].mean() for block_b in blocks_b]
            for block_a in blocks_a
        ]
    )
    return means / np.outer(means.mean(axis=1), means.mean(axis=0)) * means.mean()


def main() -> None:
    sizes_a = [30, 40, 50]
    graph_a = directed_block_graph(sizes_a, ROLE_MATRIX, seed=11, name="facebook")
    sizes_b = [20, 25, 35]
    graph_b = directed_block_graph(sizes_b, ROLE_MATRIX, seed=23, name="twitter")
    print(f"G_A = {graph_a} (communities {sizes_a})")
    print(f"G_B = {graph_b} (communities {sizes_b})")

    blocks_a = community_blocks(sizes_a)
    blocks_b = community_blocks(sizes_b)

    similarity = gsim_plus(
        graph_a, graph_b, iterations=10, normalization="global"
    ).similarity

    lift = lift_matrix(similarity, blocks_a, blocks_b)
    print("\ncommunity-pair lift (rows: Facebook, cols: Twitter):")
    with np.printoptions(precision=3, suppress=True):
        print(lift)

    matched = lift.argmax(axis=1)
    print("\nmatches:")
    for i, j in enumerate(matched):
        marker = "ok" if i == j else "MISMATCH"
        print(f"  Facebook {ROLE_NAMES[i]:<13} -> Twitter {ROLE_NAMES[j]:<13} [{marker}]")
    hits = int((matched == np.arange(len(blocks_a))).sum())
    print(f"{hits}/{len(blocks_a)} communities matched to their counterpart")

    # Targeted-advertising query: seed users from the Facebook broadcaster
    # community, retrieve the Twitter users with the highest lift.
    seeds = blocks_a[0][:5]
    scores = gsim_plus(
        graph_a, graph_b, iterations=10, queries_a=seeds, normalization="global"
    ).similarity.mean(axis=0)
    # Normalise out each candidate's raw activity mass before ranking.
    mass = similarity.mean(axis=0)
    adjusted = scores / (mass + mass.mean() * 1e-6)
    top = np.argsort(-adjusted)[:10]
    inside = int(np.isin(top, blocks_b[0]).sum())
    print(
        f"\ntop-10 Twitter matches for 5 Facebook broadcaster seeds: {top.tolist()}\n"
        f"{inside}/10 are Twitter broadcasters"
    )


if __name__ == "__main__":
    main()
