"""Web-graph anomaly detection across crawls.

Papadimitriou et al. (2010, cited by the paper) monitor a search engine's
web graph by computing a *similarity score between consecutive crawls*:
normal churn moves the score a little, while crawler bugs or attacks (link
farms, lost hosts) move it more and concentrate the change on a few pages.

This example reproduces the pipeline at laptop scale with GSim+ as the
similarity engine:

1. **Graph-level drift score** — the mass of the self-similarity diagonal
   ``sum_i S[i, i]`` of the cross-crawl GSim matrix (normalised over the
   common pages).  It decreases monotonically with edge churn, giving a
   single health number per re-crawl.
2. **Page-level attribution** — the pages whose normalised self-similarity
   moved the most (``|diag delta|``) localise the structural change; the
   injected link-farm target ranks first.

Run with::

    python examples/web_anomaly_detection.py
"""

import numpy as np

from repro import Graph, gsim_plus
from repro.graphs import rmat_graph


def perturb_edges(graph: Graph, fraction: float, seed: int) -> Graph:
    """Resample ``fraction`` of the edges uniformly (normal crawl churn)."""
    rng = np.random.default_rng(seed)
    edges = [(s, d) for s, d, _ in graph.edges()]
    keep = rng.random(len(edges)) >= fraction
    surviving = {edge for edge, flag in zip(edges, keep) if flag}
    n = graph.num_nodes
    while len(surviving) < len(edges):
        candidate = (int(rng.integers(n)), int(rng.integers(n)))
        if candidate[0] != candidate[1]:
            surviving.add(candidate)
    return Graph.from_edges(n, sorted(surviving), name=f"{graph.name}-churn")


def inject_link_farm(graph: Graph, target: int, farm_size: int, seed: int) -> Graph:
    """Add a dense cluster of new pages all linking to ``target``."""
    rng = np.random.default_rng(seed)
    n = graph.num_nodes
    edges = [(s, d) for s, d, _ in graph.edges()]
    farm = list(range(n, n + farm_size))
    for page in farm:
        edges.append((page, target))
        # Farms also interlink to inflate each other.
        for other in rng.choice(farm, size=3):
            if int(other) != page:
                edges.append((page, int(other)))
    return Graph.from_edges(n + farm_size, edges, name=f"{graph.name}-spam")


def self_similarity_profile(baseline: Graph, recrawl: Graph) -> np.ndarray:
    """Per-page normalised self-similarity between two crawls.

    Runs GSim+ between the crawls, restricts to the pages present in both,
    and returns the diagonal scaled to the block's Frobenius mass — the
    per-page "my role is unchanged" signal.
    """
    n = baseline.num_nodes
    similarity = gsim_plus(
        baseline, recrawl, iterations=8, normalization="global"
    ).similarity[:, :n]
    return np.diag(similarity) / np.linalg.norm(similarity)


def main() -> None:
    crawl_0 = rmat_graph(9, 4_000, seed=3, name="crawl0")  # 512 pages
    print(f"baseline crawl: {crawl_0}")
    baseline_profile = self_similarity_profile(crawl_0, crawl_0)
    print(f"graph health score (self):  {baseline_profile.sum():.4f}")

    # Healthy re-crawls at increasing churn: the score degrades smoothly.
    print("\nhealthy re-crawls:")
    for churn in (0.01, 0.03, 0.10):
        recrawl = perturb_edges(crawl_0, fraction=churn, seed=40 + int(churn * 100))
        score = self_similarity_profile(crawl_0, recrawl).sum()
        print(f"  churn {churn:>4.0%}: score {score:.4f} "
              f"(drop {baseline_profile.sum() - score:+.4f})")

    # Compromised re-crawl: a link farm pointed at one mid-popularity page.
    in_degrees = crawl_0.in_degrees()
    target = int(np.argsort(in_degrees)[crawl_0.num_nodes // 2])
    crawl_spam = inject_link_farm(crawl_0, target=target, farm_size=40, seed=5)
    spam_profile = self_similarity_profile(crawl_0, crawl_spam)
    print(f"\nlink-farm re-crawl: score {spam_profile.sum():.4f}")

    # Attribution: pages whose self-similarity moved the most.
    delta = np.abs(baseline_profile - spam_profile)
    suspects = np.argsort(-delta)[:5]
    rank = int(np.where(np.argsort(-delta) == target)[0][0]) + 1
    print(f"top-5 pages by self-similarity shift: {suspects.tolist()}")
    print(f"farm target (page {target}) ranks #{rank} of {crawl_0.num_nodes}")


if __name__ == "__main__":
    main()
