"""Content-aware entity matching — structure plus features.

The paper's introduction notes GSim "can be easily adapted to
content-based similarity measures".  The mechanism: replace the all-ones
start matrix with a content prior ``Z_0 = F_A F_B^T`` built from per-node
feature vectors (``gsim_plus(..., initial_factors=(F_A, F_B))``).  The
factored GSim+ iteration stays exact; the content narrows one dimension
of identity and the link structure the other.

Scenario: two product catalogues.  Each catalogue has several *sections*
(kitchen, sports, ...), and inside a section products form a pipeline
``entry -> core -> accessory``.  Then:

* **structure alone** identifies a product's pipeline *position* but not
  its section — every section looks identical topologically;
* **content alone** (section feature vectors) identifies the section but
  not the position — all products in a section share features;
* **feature-seeded GSim+** resolves both and recovers the full planted
  correspondence.

Run with::

    python examples/content_aware_matching.py
"""

import numpy as np

from repro import Graph, gsim_plus
from repro.analysis import alignment_accuracy, best_alignment

SECTIONS = ["kitchen", "sports", "books", "garden"]
CHAIN = ["entry", "core", "accessory"]


def build_catalogue(seed: int) -> tuple[Graph, np.ndarray]:
    """A catalogue: one ``entry -> core -> accessory`` chain per section.

    Features are (noisy) one-hot section indicators, so products within a
    section are content-twins and products at the same chain position are
    structure-twins.
    """
    num_sections, chain_len = len(SECTIONS), len(CHAIN)
    n = num_sections * chain_len
    edges = []
    features = np.zeros((n, num_sections))
    for section in range(num_sections):
        base = section * chain_len
        for position in range(chain_len - 1):
            edges.append((base + position, base + position + 1))
        features[base : base + chain_len, section] = 1.0
    rng = np.random.default_rng(seed)
    features += rng.uniform(0.0, 0.02, features.shape)  # mild feature noise
    return Graph.from_edges(n, edges, name=f"catalogue-{seed}"), features


def permute_catalogue(
    graph: Graph, features: np.ndarray, seed: int
) -> tuple[Graph, np.ndarray, dict[int, int]]:
    """Relabel a catalogue with a random permutation.

    Returns the permuted graph/features plus the ground-truth mapping
    ``catalogue-A node -> permuted catalogue-B node``, so tie-breaking by
    node id cannot accidentally reproduce the planted correspondence.
    """
    rng = np.random.default_rng(seed)
    n = graph.num_nodes
    permutation = rng.permutation(n)  # original id -> new id
    inverse = np.argsort(permutation)  # new id -> original id
    edges = [
        (int(permutation[s]), int(permutation[d]), w) for s, d, w in graph.edges()
    ]
    permuted_graph = Graph.from_edges(n, edges, name=f"{graph.name}-permuted")
    permuted_features = features[inverse]
    truth = {i: int(permutation[i]) for i in range(n)}
    return permuted_graph, permuted_features, truth


def main() -> None:
    catalogue_a, features_a = build_catalogue(seed=1)
    original_b, original_features_b = build_catalogue(seed=2)
    catalogue_b, features_b, truth = permute_catalogue(
        original_b, original_features_b, seed=9
    )
    print(f"catalogue A: {catalogue_a}")
    print(f"catalogue B: {catalogue_b} (randomly relabelled)")
    print(
        f"{len(SECTIONS)} sections x {len(CHAIN)} pipeline positions: "
        "structure fixes the position, content fixes the section\n"
    )

    # --- structure only -------------------------------------------------
    structural = gsim_plus(
        catalogue_a, catalogue_b, iterations=4, normalization="global"
    ).similarity
    structure_accuracy = alignment_accuracy(best_alignment(structural), truth)

    # --- content only ---------------------------------------------------
    content = features_a @ features_b.T
    content_accuracy = alignment_accuracy(best_alignment(content), truth)

    # --- structure + content (feature-seeded GSim+) ---------------------
    seeded = gsim_plus(
        catalogue_a,
        catalogue_b,
        iterations=4,
        normalization="global",
        initial_factors=(features_a, features_b),
    ).similarity
    combined_accuracy = alignment_accuracy(best_alignment(seeded), truth)

    print("alignment accuracy against the planted correspondence:")
    print(f"  structure only       {structure_accuracy:6.1%}")
    print(f"  content only         {content_accuracy:6.1%}")
    print(f"  structure + content  {combined_accuracy:6.1%}")

    assert combined_accuracy > max(structure_accuracy, content_accuracy)
    print(
        "\nneither signal identifies a product alone; the feature-seeded "
        "iteration recovers the full correspondence"
    )


if __name__ == "__main__":
    main()
