"""Index once, retrieve forever — GSim+ as a similarity index.

The expensive part of GSim+ is iterating the factor matrices ``U_K`` /
``V_K``; answering a query block from them is a cheap slender product.
This example shows the index workflow the paper's "retrieval" framing
implies:

1. build the factors for a scaled web-crawl dataset pair (once),
2. persist them to an ``.npz`` index file,
3. reload and serve three kinds of queries without touching the graphs:
   arbitrary query blocks, global top-k pairs, and per-node rankings.

Run with::

    python examples/index_and_retrieve.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import (
    GSimPlus,
    load_factors,
    save_factors,
    top_k_for_queries,
    top_k_pairs,
)
from repro.graphs import load_dataset_pair


def build_index(graph_a, graph_b, iterations: int, path: Path) -> float:
    """Iterate GSim+ and persist the final factors; returns build seconds."""
    start = time.perf_counter()
    solver = GSimPlus(graph_a, graph_b, rank_cap="qr-compress")
    state = None
    for state in solver.iterate(iterations):
        pass
    save_factors(state.factors, path)
    return time.perf_counter() - start


def main() -> None:
    graph_a, graph_b = load_dataset_pair("UK", scale="tiny", seed=7)
    print(f"G_A = {graph_a}")
    print(f"G_B = {graph_b}")

    with tempfile.TemporaryDirectory() as tmp:
        index_path = Path(tmp) / "uk_gsim_index.npz"

        # --- 1+2: build and persist --------------------------------------
        build_seconds = build_index(graph_a, graph_b, iterations=6, path=index_path)
        size_kib = index_path.stat().st_size / 1024
        print(f"\nindex built in {build_seconds * 1e3:.1f} ms, "
              f"{size_kib:.0f} KiB on disk")

        # --- 3a: serve a query block from the loaded index ---------------
        factors = load_factors(index_path)
        start = time.perf_counter()
        block = factors.query_block([5, 17, 99], [0, 1, 2, 3])
        block /= np.linalg.norm(block)
        query_ms = (time.perf_counter() - start) * 1e3
        print(f"\n3x4 query block served in {query_ms:.2f} ms:")
        print(np.array_str(block, precision=3, suppress_small=True))

    # --- 3b: global top-k pairs ------------------------------------------
    best = top_k_pairs(graph_a, graph_b, k=5, iterations=6)
    print("\ntop-5 most similar cross-graph pairs:")
    for pair in best:
        print(f"  G_A node {pair.node_a:>5}  ~  G_B node {pair.node_b:>4}"
              f"   score {pair.score:.4f}")

    # --- 3c: per-node retrieval -------------------------------------------
    queries = [0, 1, 2]
    rankings = top_k_for_queries(graph_a, graph_b, queries, k=3, iterations=6)
    print("\nper-node retrieval (3 best matches each):")
    for node in queries:
        matches = ", ".join(
            f"{p.node_b} ({p.score:.4f})" for p in rankings[node]
        )
        print(f"  G_A node {node}: {matches}")


if __name__ == "__main__":
    main()
