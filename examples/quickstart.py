"""Quickstart: compute GSim+ similarities between two graphs.

Run with::

    python examples/quickstart.py

Covers the core workflow: build graphs, pick query sets, run GSim+,
compare against the naive GSim baseline (identical scores, Theorem 3.1),
and inspect the convergence behaviour.
"""

import numpy as np

from repro import Graph, gsim, gsim_plus, iterate_to_convergence
from repro.analysis import frobenius_error


def main() -> None:
    # --- 1. Build two graphs -------------------------------------------
    # G_A: a small "social network" of 8 users.
    graph_a = Graph.from_edges(
        8,
        [
            (0, 1), (1, 2), (2, 3), (3, 0),  # a 4-cycle community
            (4, 5), (5, 6), (6, 4),          # a triangle community
            (2, 4), (6, 7), (7, 0),          # bridges
        ],
        name="facebook-toy",
    )
    # G_B: a different network with analogous structure.
    graph_b = Graph.from_edges(
        5,
        [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)],
        name="twitter-toy",
    )
    print(f"G_A = {graph_a}")
    print(f"G_B = {graph_b}")

    # --- 2. Full similarity matrix --------------------------------------
    result = gsim_plus(graph_a, graph_b, iterations=10)
    print("\nGSim+ similarity matrix S_10 (8 x 5):")
    print(np.array_str(result.similarity, precision=3, suppress_small=True))
    print(f"factor width at the end: {result.final_width}")

    # --- 3. Query subsets (Algorithm 1's main use case) -----------------
    queries_a = [0, 2, 4]
    queries_b = [1, 2]
    block = gsim_plus(
        graph_a, graph_b, iterations=10, queries_a=queries_a, queries_b=queries_b
    ).similarity
    print(f"\nQuery block S[Q_A={queries_a}, Q_B={queries_b}]:")
    print(np.array_str(block, precision=3))

    # --- 4. Exactness versus the naive baseline (Theorem 3.1) -----------
    naive = gsim(graph_a, graph_b, iterations=10).similarity
    gap = frobenius_error(result.similarity, naive)
    print(f"\n||GSim+ - GSim||_F after 10 iterations: {gap:.2e} (exactly 0 in theory)")

    # --- 5. Tolerance-driven iteration ----------------------------------
    report = iterate_to_convergence(
        graph_a, graph_b, tolerance=1e-3, max_iterations=100
    )
    print(
        f"\nconverged={report.converged} after {report.iterations} iterations; "
        f"first/last even-iterate residuals: "
        f"{report.residuals[0]:.1e} -> {report.residuals[-1]:.1e}"
    )


if __name__ == "__main__":
    main()
