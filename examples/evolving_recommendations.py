"""Cross-platform recommendations over an evolving graph.

A recommendation service keeps similarity state between a large "source"
platform graph and a smaller "target" platform graph while the source
graph receives a stream of interaction updates.  GSim+'s cheap iteration
makes a recompute-on-write policy practical:
:class:`repro.dynamic.SimilaritySession` recomputes factors lazily on the
first query after a change and serves every other query from cache.

This example replays a synthetic interaction stream, interleaves queries,
and reports the session's cache behaviour plus how a burst of new edges
shifts a user's recommendations.

Run with::

    python examples/evolving_recommendations.py
"""

import numpy as np

from repro.dynamic import DynamicGraph, SimilaritySession
from repro.graphs import erdos_renyi_graph, random_node_sample


def as_dynamic(graph, extra_capacity: int = 0) -> DynamicGraph:
    """Copy an immutable Graph into a DynamicGraph."""
    dynamic = DynamicGraph(graph.num_nodes + extra_capacity)
    dynamic.add_edges([(s, d) for s, d, _ in graph.edges()])
    return dynamic


def main() -> None:
    rng = np.random.default_rng(42)
    base = erdos_renyi_graph(300, 1800, seed=1, name="source")
    target = random_node_sample(base, 60, seed=2)
    source_graph = as_dynamic(base)
    target_graph = as_dynamic(target)
    session = SimilaritySession(source_graph, target_graph, iterations=7)
    print(f"source: {source_graph}")
    print(f"target: {target_graph}")

    user = 17
    before = session.top_matches(user, k=5)
    print(f"\nuser {user} recommendations before updates:")
    for node, score in before:
        print(f"  target node {node:>3}  score {score:.5f}")

    # Replay an interaction stream: batches of new edges + queries between.
    batches = 6
    per_batch = 40
    for batch in range(batches):
        new_edges = set()
        while len(new_edges) < per_batch:
            src = int(rng.integers(source_graph.num_nodes))
            dst = int(rng.integers(source_graph.num_nodes))
            # Skip edges that already exist: DynamicGraph rejects exact
            # duplicates as self-inconsistent mutations.
            if src != dst and not source_graph.has_edge(src, dst):
                new_edges.add((src, dst))
        source_graph.add_edges(sorted(new_edges))
        # A few queries land between batches; only the first recomputes.
        for _ in range(3):
            probe = int(rng.integers(source_graph.num_nodes))
            session.top_matches(probe, k=3)

    stats = session.stats
    print(
        f"\nafter {batches} update batches and {stats.queries} queries: "
        f"{stats.recomputes} recomputes, {stats.cache_hits} cache hits"
    )

    after = session.top_matches(user, k=5)
    print(f"\nuser {user} recommendations after updates:")
    for node, score in after:
        print(f"  target node {node:>3}  score {score:.5f}")
    moved = {node for node, _ in before} ^ {node for node, _ in after}
    print(f"recommendation churn: {len(moved)} of 2x5 slots changed")


if __name__ == "__main__":
    main()
